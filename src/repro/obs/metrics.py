"""Zero-dependency metrics primitives: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs` (the tracing half
lives in :mod:`repro.obs.trace`).  All instruments are process-local,
thread-safe, and exportable two ways:

- :meth:`MetricsRegistry.to_json` — a snapshot dict serialised to JSON,
  the format consumed by the test goldens and the ``--profile`` dump.
- :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# TYPE``/``# HELP`` headers, ``_bucket``/``_sum``/``_count``
  series for histograms), scrapeable by any Prometheus-compatible agent.

Histograms use *fixed* upper-edge buckets chosen at creation time, so
observation is O(log buckets) with no rebalancing — the right trade-off
for latency distributions on hot paths.
"""

from __future__ import annotations

import bisect
import json
import math
import threading

#: Default histogram upper edges (seconds): 1 us .. 100 s, log-spaced.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

#: Retry-backoff delay edges (seconds): 10 ms .. 60 s, for the
#: ``resilience.backoff_seconds`` histogram (delays below 10 ms are all
#: "immediate retry" territory and need no resolution).
BACKOFF_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0,
)

#: Request-latency edges (seconds) for the serving layer: 100 us .. 10 s
#: with extra resolution around the millisecond range where a healthy
#: single-matrix predict lands.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)


def _sanitize(name: str) -> str:
    """Prometheus metric names allow ``[a-zA-Z0-9_:]`` only."""
    return "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``buckets`` are *upper* edges in increasing order; an implicit
    ``+Inf`` bucket catches the overflow, matching Prometheus semantics
    (``le`` = less-than-or-equal, cumulative on export).
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_min", "_max", "_invalid", "_lock")

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("at least one bucket edge required")
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.help = help
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._invalid = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            # A single NaN would poison `sum` (and therefore `mean`)
            # forever; count the rejection instead of recording it.
            with self._lock:
                self._invalid += 1
            return
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def invalid(self) -> int:
        """Observations rejected for being NaN or ±Inf."""
        return self._invalid

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (NaN when empty)."""
        from repro.obs.quantiles import bucket_quantile

        with self._lock:
            counts = list(self._counts)
            lo, hi = self._min, self._max
        return bucket_quantile(self.buckets, counts, q, lo=lo, hi=hi)

    def summary(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict:
        """``{"p50": ..., ...}`` quantile estimates for this histogram."""
        from repro.obs.quantiles import quantile_key

        return {quantile_key(q): self.quantile(q) for q in qs}

    def bucket_counts(self) -> dict[str, int]:
        """Per-bucket (non-cumulative) counts keyed by upper edge."""
        keys = [repr(edge) for edge in self.buckets] + ["+Inf"]
        return dict(zip(keys, self._counts))

    def snapshot(self) -> dict:
        out = {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "buckets": self.bucket_counts(),
        }
        if self._count:
            out["min"] = self._min
            out["max"] = self._max
        if self._invalid:
            out["invalid"] = self._invalid
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold another histogram's snapshot into this one.

        The cross-process stitching path: a worker ships
        ``Histogram.snapshot()`` back with its chunk result and the
        parent merges it here.  Bucket edges must match (same metric
        name on both sides implies the same call site and buckets).
        """
        counts = snapshot.get("buckets", {})
        keys = [repr(edge) for edge in self.buckets] + ["+Inf"]
        if sorted(counts) != sorted(keys):
            raise ValueError(
                f"histogram {self.name!r}: snapshot buckets "
                f"{sorted(counts)} do not match {sorted(keys)}"
            )
        with self._lock:
            for i, key in enumerate(keys):
                self._counts[i] += int(counts[key])
            self._sum += float(snapshot.get("sum", 0.0))
            self._count += int(snapshot.get("count", 0))
            self._invalid += int(snapshot.get("invalid", 0))
            if "min" in snapshot:
                self._min = min(self._min, float(snapshot["min"]))
            if "max" in snapshot:
                self._max = max(self._max, float(snapshot["max"]))


class MetricsRegistry:
    """Thread-safe, name-keyed home of every instrument.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    sites never need to coordinate on registration order.  Re-requesting
    a name with a different instrument kind is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, **kwargs)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets=buckets, help=help)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold a serialized registry snapshot into this registry.

        The cross-process merge path: workers ship
        :meth:`snapshot` dicts back with their chunk results and the
        parent folds them in here.  Counters add, gauges take the
        incoming value (last-write-wins, matching :meth:`Gauge.set`),
        histograms merge bucket-by-bucket.  Unknown instrument names
        are created on the fly so worker-only metrics still surface.
        """
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(float(data.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(data.get("value", 0.0)))
            elif kind == "histogram":
                from repro.obs.quantiles import _edges_and_counts

                edges, _ = _edges_and_counts(data.get("buckets", {}))
                self.histogram(name, buckets=tuple(edges)).merge(data)
            else:
                raise ValueError(
                    f"metric {name!r}: unknown instrument type {kind!r}"
                )

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Stable-ordered dict of per-instrument snapshots."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            pname = _sanitize(name)
            if inst.help:
                lines.append(f"# HELP {pname} {inst.help}")
            if isinstance(inst, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {_fmt(inst.value)}")
            elif isinstance(inst, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_fmt(inst.value)}")
            else:
                lines.append(f"# TYPE {pname} histogram")
                cumulative = 0
                for edge, count in zip(inst.buckets, inst._counts):
                    cumulative += count
                    lines.append(
                        f'{pname}_bucket{{le="{_fmt(edge)}"}} {cumulative}'
                    )
                cumulative += inst._counts[-1]
                lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{pname}_sum {_fmt(inst.sum)}")
                lines.append(f"{pname}_count {inst.count}")
                for q in (0.5, 0.95, 0.99):
                    est = inst.quantile(q)
                    if not math.isnan(est):
                        lines.append(
                            f'{pname}{{quantile="{_fmt(q)}"}} {_fmt(est)}'
                        )
                if inst.invalid:
                    lines.append(f"{pname}_invalid_total {inst.invalid}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Render floats the Prometheus way: integers without the dot."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
