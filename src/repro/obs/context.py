"""Trace-context propagation across threads and worker processes.

:data:`~repro.obs.telemetry.TELEMETRY` is process-local: spans opened
inside a ``ProcessPoolExecutor`` worker land in *that* process's tracer
and evaporate when the pool shuts down.  This module is the bridge:

- :class:`TraceContext` — the serializable identity of one request or
  campaign (``trace_id`` plus the parent-side span id a worker subtree
  should hang under).  Small and pickle-friendly by construction, so
  shipping it with every task costs nothing measurable.
- :func:`current_context` / :func:`request_scope` — parent-side helpers
  that mint a context, open the request root span, and expose the
  context to whatever fans work out (``parallel_map``, the serving
  loop).
- :func:`worker_capture` — worker-side harness: runs the task body
  under a fresh, enabled telemetry (the fork start method means workers
  *inherit* an enabled ``TELEMETRY`` whose spans would otherwise be
  lost; a reset gives each chunk a clean slate), then exports the span
  subtree and a metrics snapshot as a plain-dict payload.
- :func:`stitch` — parent-side merge: adopts the worker span subtree
  under the propagated parent span and folds the metric deltas into the
  live registry.

Determinism contract (DESIGN §12): stitching happens strictly on the
*telemetry* side — worker payloads ride alongside chunk results, never
inside them, and no call in this module touches result values.  Output
bytes of a campaign are identical with telemetry on or off and for any
worker count; only the trace and registry grow.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.telemetry import TELEMETRY, Telemetry


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (UUID4, no dashes)."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """Serializable identity of one traced request/campaign.

    ``trace_id`` names the whole request; ``parent_span_id`` is the
    parent-side span id that adopted worker subtrees attach to
    (informational — the structural parent is re-established at stitch
    time, but the id lets flat log lines be correlated without the
    tree).
    """

    trace_id: str
    parent_span_id: int = -1

    def child(self, parent_span_id: int) -> "TraceContext":
        """Same trace, new parent span — for nested fan-out."""
        return TraceContext(self.trace_id, parent_span_id)


_local = threading.local()


def current_context() -> TraceContext | None:
    """The active trace context on this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(ctx: TraceContext) -> Iterator[TraceContext]:
    """Push ``ctx`` as the active context for the dynamic extent."""
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


@contextmanager
def request_scope(name: str, trace_id: str | None = None, **attrs):
    """Open a request root span and activate its trace context.

    Yields the open :class:`~repro.obs.trace.Span` (the no-op span when
    telemetry is disabled — the context is still activated so ids flow
    into access logs even without tracing).

    A nested scope (no explicit ``trace_id``) joins the enclosing trace
    rather than minting a new id: one CLI invocation or request is one
    trace, however many request-shaped layers it passes through.
    """
    if trace_id is None:
        active = current_context()
        trace_id = active.trace_id if active is not None else new_trace_id()
    ctx = TraceContext(trace_id)
    with activate(ctx):
        span = TELEMETRY.span(name, trace=ctx.trace_id, **attrs)
        with span as opened:
            span_id = getattr(opened, "span_id", -1)
            if span_id != -1:
                with activate(ctx.child(span_id)):
                    yield opened
            else:
                yield opened


def worker_capture(
    ctx: TraceContext, name: str, fn, /, *args, span_attrs=None, **kwargs
):
    """Run ``fn`` in a worker under a fresh child telemetry.

    Returns ``(result, payload)`` where ``payload`` is either ``None``
    (context says tracing is off) or a plain dict::

        {"spans": [...], "metrics": {...}}

    ready to cross the process boundary back to the parent.  The
    worker's global ``TELEMETRY`` is swapped to a clean state for the
    call and restored to disabled afterwards, so fork-inherited spans
    and metrics from the parent never leak into the payload.
    """
    if ctx is None:
        return fn(*args, **kwargs), None
    # Fresh registry + tracer: fork-inherited state would double-count.
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        with TELEMETRY.span(name, trace=ctx.trace_id, **(span_attrs or {})):
            result = fn(*args, **kwargs)
        payload = {
            "spans": TELEMETRY.tracer.export_spans(),
            "metrics": TELEMETRY.registry.snapshot(),
        }
        return result, payload
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()


def stitch(
    payload: dict | None,
    telemetry: Telemetry | None = None,
    anchor: float | None = None,
) -> int:
    """Merge one worker payload into the parent telemetry.

    Adopts the span subtree under the parent's *currently open* span
    (or as new roots when none is open) and folds the metric deltas
    into the registry.  ``anchor`` defaults to "now": the worker subtree
    is aligned so it ends at the moment its result was stitched, which
    keeps the Chrome trace visually coherent across clock domains.
    Returns the number of spans adopted.
    """
    if not payload:
        return 0
    tel = telemetry if telemetry is not None else TELEMETRY
    if not tel.enabled:
        return 0
    if anchor is None:
        anchor = time.perf_counter()
    tel.registry.merge_snapshot(payload.get("metrics", {}))
    return tel.tracer.adopt(
        payload.get("spans", []),
        parent=tel.tracer.current(),
        anchor=anchor,
    )


__all__ = [
    "TraceContext",
    "activate",
    "current_context",
    "new_trace_id",
    "request_scope",
    "stitch",
    "worker_capture",
]
