"""Human- and machine-readable exports of a telemetry session.

Used by the CLI's ``--profile`` flag: the machine half is the Chrome-trace
JSONL written by :meth:`Tracer.write_jsonl`; the human half is the span
tree and metrics snapshot rendered here.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Span, Tracer


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.3f} us"


def render_span_tree(tracer: Tracer, max_depth: int = 12) -> str:
    """Indented tree of finished spans with durations and attributes."""
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        if depth > max_depth:
            return
        attrs = {
            k: v for k, v in span.attrs.items() if k not in ("id", "parent")
        }
        suffix = (
            "  " + " ".join(f"{k}={v}" for k, v in attrs.items())
            if attrs
            else ""
        )
        lines.append(
            f"{_fmt_seconds(span.duration)}  {'  ' * depth}{span.name}{suffix}"
        )
        for child in span.children:
            visit(child, depth + 1)

    for root in tracer.roots:
        visit(root, 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry) -> str:
    """One line per instrument; histograms show count/mean/min/max."""
    lines: list[str] = []
    for name in registry.names():
        inst = registry.get(name)
        if isinstance(inst, Histogram):
            if inst.count:
                quants = " ".join(
                    f"{key}={val:.6g}s"
                    for key, val in inst.summary().items()
                )
                lines.append(
                    f"{name}: count={inst.count} mean={inst.mean:.6g}s "
                    f"min={inst._min:.6g}s max={inst._max:.6g}s {quants}"
                )
            else:
                lines.append(f"{name}: count=0")
        else:
            lines.append(f"{name}: {inst.value:g}")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def dump_profile(
    telemetry: Telemetry,
    trace_path: str | None = None,
    stream: IO[str] | None = None,
) -> None:
    """Write the JSONL trace (if a path was given) and print the report.

    The human-readable report — span tree plus metrics snapshot — goes to
    ``stream`` (default stderr, keeping stdout clean for command output).
    """
    out = stream if stream is not None else sys.stderr
    if trace_path:
        n = telemetry.tracer.write_jsonl(trace_path)
        print(f"[obs] {n} span events written to {trace_path}", file=out)
    print("[obs] span tree:", file=out)
    print(render_span_tree(telemetry.tracer), file=out)
    print("[obs] metrics:", file=out)
    print(render_metrics(telemetry.registry), file=out)
