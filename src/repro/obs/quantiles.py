"""Bucket-interpolated quantile estimation for fixed-bucket histograms.

The histograms in :mod:`repro.obs.metrics` keep per-bucket counts, not
raw samples, so exact percentiles are unavailable — but the standard
Prometheus ``histogram_quantile`` estimate (linear interpolation inside
the bucket that contains the target rank) is cheap, deterministic, and
accurate to within one bucket width.  That is the right trade-off for
SLO evaluation: bucket edges are chosen to bracket the thresholds that
matter (:data:`~repro.obs.metrics.LATENCY_BUCKETS` has extra resolution
around the millisecond range), so "p99 is under 2.5 ms" is answerable
exactly even though "p99 is 2.183 ms" is an estimate.

Estimation contract (shared with Prometheus):

- the quantile rank is ``q * count`` (``q`` in ``[0, 1]``),
- within the containing bucket the estimate interpolates linearly
  between the bucket's lower and upper edge,
- the first bucket's lower edge is 0 (latencies are non-negative),
- a rank landing in the ``+Inf`` overflow bucket returns the highest
  finite edge (there is no upper bound to interpolate towards),
- when the histogram tracked exact ``min``/``max`` the estimate is
  clamped to that envelope, which tightens single-bucket distributions.

All functions are pure and operate on plain numbers, so they serve both
live :class:`~repro.obs.metrics.Histogram` objects and deserialized
snapshots (``repro obs report`` reads the latter).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: The quantiles surfaced by default everywhere (stats, serve, bench).
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def bucket_quantile(
    edges: Sequence[float],
    counts: Sequence[int],
    q: float,
    lo: float | None = None,
    hi: float | None = None,
) -> float:
    """Estimate quantile ``q`` from per-bucket (non-cumulative) counts.

    ``edges`` are the finite upper edges in increasing order; ``counts``
    has one extra entry for the implicit ``+Inf`` overflow bucket.
    ``lo``/``hi`` optionally clamp the estimate to the observed
    min/max envelope.  Returns ``nan`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(counts) != len(edges) + 1:
        raise ValueError(
            f"{len(counts)} counts for {len(edges)} edges "
            f"(need len(edges) + 1, the last being +Inf)"
        )
    total = sum(counts)
    if total == 0:
        return math.nan
    rank = q * total
    cumulative = 0.0
    estimate: float | None = None
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count > 0:
            if i == len(edges):
                # Overflow bucket: no finite upper edge to interpolate
                # towards; the highest finite edge is the best bound.
                estimate = edges[-1] if edges else math.inf
            else:
                lower = edges[i - 1] if i > 0 else 0.0
                upper = edges[i]
                into = rank - (cumulative - count)
                estimate = lower + (upper - lower) * (into / count)
            break
    if estimate is None:  # pragma: no cover - defensive; rank <= total
        estimate = edges[-1] if edges else math.nan
    if lo is not None and math.isfinite(lo):
        estimate = max(estimate, lo)
    if hi is not None and math.isfinite(hi):
        estimate = min(estimate, hi)
    return estimate


def _edges_and_counts(
    buckets: Mapping[str, int]
) -> tuple[list[float], list[int]]:
    """Split a snapshot's ``{edge_repr: count}`` dict into edges+counts.

    Snapshot bucket keys are ``repr(edge)`` strings plus the ``"+Inf"``
    overflow key (see :meth:`Histogram.bucket_counts`).
    """
    finite = [(float(k), int(v)) for k, v in buckets.items() if k != "+Inf"]
    finite.sort(key=lambda kv: kv[0])
    edges = [k for k, _ in finite]
    counts = [v for _, v in finite]
    counts.append(int(buckets.get("+Inf", 0)))
    return edges, counts


def snapshot_quantile(snapshot: Mapping, q: float) -> float:
    """Quantile estimate from one histogram *snapshot* dict.

    Accepts the format produced by
    :meth:`~repro.obs.metrics.Histogram.snapshot` (``type: histogram``
    with a ``buckets`` mapping); returns ``nan`` when the snapshot is
    not a histogram or holds no observations.
    """
    if snapshot.get("type") != "histogram":
        return math.nan
    edges, counts = _edges_and_counts(snapshot.get("buckets", {}))
    return bucket_quantile(
        edges,
        counts,
        q,
        lo=snapshot.get("min"),
        hi=snapshot.get("max"),
    )


def quantile_key(q: float) -> str:
    """Canonical label for quantile ``q``: ``0.99`` → ``"p99"``.

    Rounds away float noise first (``0.95 * 100`` is not exactly 95.0).
    """
    return f"p{round(q * 100, 6):g}"


def summarize(
    snapshot: Mapping, qs: Sequence[float] = DEFAULT_QUANTILES
) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` from a histogram snapshot."""
    return {quantile_key(q): snapshot_quantile(snapshot, q) for q in qs}


def exact_quantile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile over raw samples (used by the bench harness,
    which keeps every latency and does not need bucket estimation)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not samples:
        return math.nan
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


__all__ = [
    "DEFAULT_QUANTILES",
    "bucket_quantile",
    "exact_quantile",
    "quantile_key",
    "snapshot_quantile",
    "summarize",
]
