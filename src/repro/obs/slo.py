"""Declarative SLO rules evaluated against a metrics-registry snapshot.

An SLO file is JSON::

    {
      "slos": [
        {"name": "predict p99 under 10ms",
         "metric": "serving.latency_seconds", "quantile": 0.99,
         "max": 0.010},
        {"name": "shed rate under 5%",
         "ratio": ["serving.shed", "serving.admitted"], "max": 0.05},
        {"name": "no quarantined reloads",
         "metric": "serving.reload.quarantined", "max": 0},
        {"name": "breaker open under 2s",
         "metric": "serving.breaker.open_seconds", "max": 2.0}
      ]
    }

Three rule shapes, all sharing ``max`` (inclusive upper bound) and/or
``min`` (inclusive lower bound):

- ``metric`` + ``quantile`` — bucket-interpolated quantile of a
  histogram (p99 latency, span costs).
- ``metric`` alone — the scalar value of a counter/gauge, or the
  *count* of a histogram.
- ``ratio: [numerator, denominator]`` — counter ratio (shed rate,
  fallback rate, OOD rate).  A zero denominator evaluates to 0.0 —
  "no traffic" should not trip a rate SLO.

A rule whose metric is absent from the snapshot is *skipped* (passes,
flagged ``missing``) unless it sets ``"required": true`` — permissive CI
gates stay green on workloads that never exercise a subsystem, while
production gates can insist the metric exists.

Everything here is pure functions over plain dicts so the ``repro obs
report`` CLI, the bench harness, and tests share one evaluator.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.quantiles import quantile_key, snapshot_quantile


class SLOConfigError(ValueError):
    """A malformed SLO rule or file."""


@dataclass(frozen=True)
class SLOResult:
    """Outcome of one rule: observed value vs. bounds."""

    name: str
    value: float
    ok: bool
    detail: str

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def _scalar(snapshot: Mapping, metric: str) -> float | None:
    """Value of a counter/gauge, count of a histogram; None if absent."""
    data = snapshot.get(metric)
    if data is None:
        return None
    if data.get("type") == "histogram":
        return float(data.get("count", 0))
    return float(data.get("value", 0.0))


def _check_rule(rule: Mapping[str, Any], snapshot: Mapping) -> SLOResult:
    name = rule.get("name") or rule.get("metric") or "unnamed"
    lo = rule.get("min")
    hi = rule.get("max")
    if lo is None and hi is None:
        raise SLOConfigError(f"rule {name!r}: needs at least one of min/max")
    required = bool(rule.get("required", False))

    if "ratio" in rule:
        pair = rule["ratio"]
        if not (isinstance(pair, (list, tuple)) and len(pair) == 2):
            raise SLOConfigError(
                f"rule {name!r}: ratio must be [numerator, denominator]"
            )
        num, den = _scalar(snapshot, pair[0]), _scalar(snapshot, pair[1])
        if num is None or den is None:
            missing = pair[0] if num is None else pair[1]
            return _missing(name, missing, required)
        value = num / den if den else 0.0
        label = f"{pair[0]}/{pair[1]}"
    elif "metric" in rule:
        metric = rule["metric"]
        q = rule.get("quantile")
        if q is not None:
            data = snapshot.get(metric)
            if data is None:
                return _missing(name, metric, required)
            if data.get("type") != "histogram":
                raise SLOConfigError(
                    f"rule {name!r}: quantile needs a histogram, "
                    f"{metric!r} is a {data.get('type')}"
                )
            value = snapshot_quantile(data, float(q))
            if math.isnan(value):
                return _missing(name, f"{metric} (empty)", required)
            label = f"{quantile_key(float(q))}({metric})"
        else:
            scalar = _scalar(snapshot, metric)
            if scalar is None:
                return _missing(name, metric, required)
            value = scalar
            label = metric
    else:
        raise SLOConfigError(f"rule {name!r}: needs 'metric' or 'ratio'")

    ok = True
    bound = ""
    if hi is not None and value > float(hi):
        ok = False
        bound = f" > max {hi:g}"
    if lo is not None and value < float(lo):
        ok = False
        bound = f" < min {lo:g}"
    if ok:
        bounds = [f"max {hi:g}" if hi is not None else "",
                  f"min {lo:g}" if lo is not None else ""]
        bound = f" (within {', '.join(b for b in bounds if b)})"
    return SLOResult(name, value, ok, f"{label} = {value:g}{bound}")


def _missing(name: str, what: str, required: bool) -> SLOResult:
    if required:
        return SLOResult(
            name, math.nan, False, f"required metric {what} missing"
        )
    return SLOResult(
        name, math.nan, True, f"metric {what} missing — skipped"
    )


def evaluate(
    rules: list[Mapping[str, Any]], snapshot: Mapping
) -> list[SLOResult]:
    """Evaluate every rule; order of results matches order of rules."""
    return [_check_rule(rule, snapshot) for rule in rules]


def load_slo_file(path: str) -> list[dict]:
    """Parse an SLO JSON file; returns the rule list."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SLOConfigError(f"cannot read SLO file {path}: {exc}") from exc
    rules = data.get("slos") if isinstance(data, dict) else None
    if not isinstance(rules, list) or not rules:
        raise SLOConfigError(
            f"SLO file {path} must hold a non-empty top-level 'slos' list"
        )
    return rules


def report(
    rules: list[Mapping[str, Any]], snapshot: Mapping
) -> tuple[str, bool]:
    """Rendered multi-line report plus overall pass/fail."""
    results = evaluate(rules, snapshot)
    lines = [r.render() for r in results]
    n_fail = sum(1 for r in results if not r.ok)
    lines.append(
        f"{len(results) - n_fail}/{len(results)} SLOs met"
        + (f", {n_fail} violated" if n_fail else "")
    )
    return "\n".join(lines), n_fail == 0


__all__ = [
    "SLOConfigError",
    "SLOResult",
    "evaluate",
    "load_slo_file",
    "report",
]
