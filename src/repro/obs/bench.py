"""The serving/inference latency benchmark behind ``repro obs bench``.

Drives two request paths over a *seeded* workload so consecutive runs
measure the same work:

- **serve** — a :class:`~repro.serving.server.SelectorServer` over a
  synthetic frozen model answers ``n_requests`` valid predict lines one
  at a time; every request's wall latency is kept, so p50/p95/p99 are
  exact (nearest-rank over raw samples, not bucket estimates).
- **batch** — :class:`~repro.inference.engine.BatchPredictor` answers
  the same feature distribution in ``repeats`` sharded batches; the
  quantiles are over per-batch wall times.

Telemetry is enabled around both phases, so the result also carries the
per-stage span cost table (``stages``) and the merged metrics registry
snapshot (``metrics``) — the inputs ``repro obs report`` evaluates SLOs
against.  The output schema is the ``BENCH_obs.json`` contract::

    {"bench": "serving_latency", "seed": ..., "requests": ..., ...,
     "serve": {"p50_ms": ..., "p95_ms": ..., "p99_ms": ..., "rps": ...},
     "batch": {"p50_ms": ..., ..., "items_per_second": ...},
     "stages": {"serving.request": {"calls": ..., "cum_s": ...,
                "self_s": ...}, ...},
     "metrics": {...}}

`benchmarks/bench_serving_latency.py` is the CI-facing wrapper; the
logic lives here because ``benchmarks/`` is not an importable package.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.obs.quantiles import exact_quantile
from repro.obs.telemetry import TELEMETRY


def _stage_costs() -> dict:
    """Aggregate the live tracer into {span name: cost} rows."""
    from repro.obs.stats import aggregate

    events = TELEMETRY.tracer.events()
    return {
        hp.name: {
            "calls": hp.calls,
            "cum_s": round(hp.cum_seconds, 6),
            "self_s": round(hp.self_seconds, 6),
        }
        for hp in aggregate(events)
    }


def _quantiles_ms(samples: list[float]) -> dict:
    return {
        "p50_ms": round(exact_quantile(samples, 0.5) * 1e3, 6),
        "p95_ms": round(exact_quantile(samples, 0.95) * 1e3, 6),
        "p99_ms": round(exact_quantile(samples, 0.99) * 1e3, 6),
    }


def bench_serve(
    model_path: str, n_requests: int, seed: int, max_batch: int = 8
) -> tuple[dict, "object"]:
    """Time ``n_requests`` valid predict lines through the full server.

    Returns the result row plus the server (so the caller can read its
    metrics snapshot after the fact).
    """
    from repro.serving.drill import _random_matrix_text
    from repro.serving.server import SelectorServer, ServingConfig

    server = SelectorServer(
        ServingConfig(
            model_path=model_path, hot_reload=False, max_batch=max_batch
        )
    )
    lines = [
        json.dumps({
            "id": f"b{i}",
            "op": "predict",
            "mtx": _random_matrix_text(i, seed),
        })
        for i in range(n_requests)
    ]
    latencies: list[float] = []
    statuses: dict[str, int] = {}
    started = time.perf_counter()
    for line in lines:
        t0 = time.perf_counter()
        response = server.handle_line(line)
        latencies.append(time.perf_counter() - t0)
        status = str(response.get("status"))
        statuses[status] = statuses.get(status, 0) + 1
    wall = time.perf_counter() - started
    row = {
        "n_requests": n_requests,
        "rps": round(n_requests / wall, 3) if wall > 0 else None,
        "wall_s": round(wall, 6),
        "statuses": dict(sorted(statuses.items())),
        **_quantiles_ms(latencies),
    }
    return row, server


def bench_batch(
    n_items: int, jobs: int, seed: int, repeats: int = 5
) -> dict:
    """Time ``repeats`` sharded batches of ``n_items`` feature vectors."""
    from repro.inference.engine import BatchPredictor
    from repro.serving.drill import synthetic_frozen_selector

    predictor = BatchPredictor(synthetic_frozen_selector(seed=seed))
    rng = np.random.default_rng(seed)
    n_features = predictor.frozen.centroids.shape[1]
    X = rng.random((n_items, n_features))
    walls: list[float] = []
    n_fallback = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = predictor.predict_sharded(X, jobs=jobs)
        walls.append(time.perf_counter() - t0)
        n_fallback = report.n_fallback
    total = sum(walls)
    return {
        "n_items": n_items,
        "jobs": jobs,
        "repeats": repeats,
        "items_per_second": (
            round(repeats * n_items / total, 3) if total > 0 else None
        ),
        "n_fallback": n_fallback,
        **_quantiles_ms(walls),
    }


def run_bench(
    model_path: str,
    n_requests: int = 200,
    n_items: int = 256,
    jobs: int = 2,
    seed: int = 0,
    max_batch: int = 8,
    repeats: int = 5,
) -> dict:
    """Full serving+batch benchmark; returns the BENCH_obs.json payload.

    Runs with telemetry enabled (restoring the prior state afterwards)
    so per-stage span costs and the metrics snapshot come along.
    """
    was_enabled = TELEMETRY.enabled
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        serve_row, server = bench_serve(
            model_path, n_requests, seed, max_batch=max_batch
        )
        batch_row = bench_batch(n_items, jobs, seed, repeats=repeats)
        stages = _stage_costs()
        metrics = server.metrics_snapshot()
    finally:
        if not was_enabled:
            TELEMETRY.disable()
    return {
        "bench": "serving_latency",
        "seed": seed,
        "requests": n_requests,
        "serve": serve_row,
        "batch": batch_row,
        "stages": stages,
        "metrics": metrics,
    }


def write_bench(result: dict, path: str) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = ["bench_batch", "bench_serve", "run_bench", "write_bench"]
