"""The serving/inference latency benchmark behind ``repro obs bench``.

Drives two request paths over a *seeded* workload so consecutive runs
measure the same work:

- **serve** — a :class:`~repro.serving.server.SelectorServer` over a
  synthetic frozen model answers ``n_requests`` valid predict lines one
  at a time; every request's wall latency is kept, so p50/p95/p99 are
  exact (nearest-rank over raw samples, not bucket estimates).
- **batch** — :class:`~repro.inference.engine.BatchPredictor` answers
  the same feature distribution in ``repeats`` sharded batches; the
  quantiles are over per-batch wall times.

Telemetry is enabled around both phases, so the result also carries the
per-stage span cost table (``stages``) and the merged metrics registry
snapshot (``metrics``) — the inputs ``repro obs report`` evaluates SLOs
against.  The output schema is the ``BENCH_obs.json`` contract::

    {"bench": "serving_latency", "seed": ..., "requests": ..., ...,
     "serve": {"p50_ms": ..., "p95_ms": ..., "p99_ms": ..., "rps": ...},
     "batch": {"p50_ms": ..., ..., "items_per_second": ...},
     "stages": {"serving.request": {"calls": ..., "cum_s": ...,
                "self_s": ...}, ...},
     "metrics": {...}}

`benchmarks/bench_serving_latency.py` is the CI-facing wrapper; the
logic lives here because ``benchmarks/`` is not an importable package.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.obs.quantiles import exact_quantile
from repro.obs.telemetry import TELEMETRY


def _stage_costs() -> dict:
    """Aggregate the live tracer into {span name: cost} rows."""
    from repro.obs.stats import aggregate

    events = TELEMETRY.tracer.events()
    return {
        hp.name: {
            "calls": hp.calls,
            "cum_s": round(hp.cum_seconds, 6),
            "self_s": round(hp.self_seconds, 6),
        }
        for hp in aggregate(events)
    }


def _quantiles_ms(samples: list[float]) -> dict:
    return {
        "p50_ms": round(exact_quantile(samples, 0.5) * 1e3, 6),
        "p95_ms": round(exact_quantile(samples, 0.95) * 1e3, 6),
        "p99_ms": round(exact_quantile(samples, 0.99) * 1e3, 6),
    }


def bench_serve(
    model_path: str, n_requests: int, seed: int, max_batch: int = 8
) -> tuple[dict, "object"]:
    """Time ``n_requests`` valid predict lines through the full server.

    Returns the result row plus the server (so the caller can read its
    metrics snapshot after the fact).
    """
    from repro.serving.drill import _random_matrix_text
    from repro.serving.server import SelectorServer, ServingConfig

    server = SelectorServer(
        ServingConfig(
            model_path=model_path, hot_reload=False, max_batch=max_batch
        )
    )
    lines = [
        json.dumps({
            "id": f"b{i}",
            "op": "predict",
            "mtx": _random_matrix_text(i, seed),
        })
        for i in range(n_requests)
    ]
    latencies: list[float] = []
    statuses: dict[str, int] = {}
    started = time.perf_counter()
    for line in lines:
        t0 = time.perf_counter()
        response = server.handle_line(line)
        latencies.append(time.perf_counter() - t0)
        status = str(response.get("status"))
        statuses[status] = statuses.get(status, 0) + 1
    wall = time.perf_counter() - started
    row = {
        "n_requests": n_requests,
        "rps": round(n_requests / wall, 3) if wall > 0 else None,
        "wall_s": round(wall, 6),
        "statuses": dict(sorted(statuses.items())),
        **_quantiles_ms(latencies),
    }
    return row, server


def bench_batch(
    n_items: int, jobs: int, seed: int, repeats: int = 5
) -> dict:
    """Time ``repeats`` sharded batches of ``n_items`` feature vectors."""
    from repro.inference.engine import BatchPredictor
    from repro.serving.drill import synthetic_frozen_selector

    predictor = BatchPredictor(synthetic_frozen_selector(seed=seed))
    rng = np.random.default_rng(seed)
    n_features = predictor.frozen.centroids.shape[1]
    X = rng.random((n_items, n_features))
    walls: list[float] = []
    n_fallback = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        report = predictor.predict_sharded(X, jobs=jobs)
        walls.append(time.perf_counter() - t0)
        n_fallback = report.n_fallback
    total = sum(walls)
    return {
        "n_items": n_items,
        "jobs": jobs,
        "repeats": repeats,
        "items_per_second": (
            round(repeats * n_items / total, 3) if total > 0 else None
        ),
        "n_fallback": n_fallback,
        **_quantiles_ms(walls),
    }


def _bench_matrices(n_matrices: int, seed: int) -> list:
    """Seeded in-memory COO matrices for the selection benchmark.

    A half-and-half mix of drill-sized tiny matrices (which the
    calibrated tier-1 stage answers a fair share of) and medium ones up
    to a few thousand nonzeros (where the feature math the tiers differ
    on dominates Python call overhead), so the tiered phase exercises
    both an interior escalation rate and a realistic latency spread.
    """
    from repro.formats.coo import COOMatrix

    rng = np.random.default_rng(seed)
    matrices = []
    for i in range(n_matrices):
        if i % 2 == 0:
            nrows = int(rng.integers(4, 24))
            ncols = int(rng.integers(4, 24))
            nnz = int(rng.integers(1, max(2, nrows * ncols // 6)))
        else:
            nrows = int(rng.integers(64, 257))
            ncols = int(rng.integers(64, 257))
            nnz = int(rng.integers(nrows, min(nrows * ncols // 4, 4096) + 1))
        flat = rng.choice(nrows * ncols, size=nnz, replace=False)
        rows, cols = np.divmod(flat, ncols)
        vals = rng.uniform(0.5, 2.0, size=nnz)
        matrices.append(COOMatrix((nrows, ncols), rows, cols, vals))
    return matrices


def bench_selection(
    model_path: str | None = None,
    n_matrices: int = 64,
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Tier-1 vs full-pipeline vs tiered end-to-end selection latency.

    Three timed paths over the same seeded matrices:

    - **tier1** — row-length statistics, the 7 cheap features, and the
      stage-1 nearest-centroid margin test (forced: the decision is
      timed whether or not the margin would have answered).
    - **full** — the complete 21-feature pipeline plus a frozen-model
      assignment, i.e. what every non-tiered prediction pays.
    - **tiered** — :meth:`TieredSelector.select` with its calibrated
      margin, so the sample mixes tier-1 answers and escalations in the
      proportion the calibration produces; the escalation rate is part
      of the result row.

    Sets ``select.bench.tier1_p50_ms`` / ``select.bench.full_p50_ms``
    gauges so an SLO ratio rule can assert the tiering speedup from the
    emitted snapshot.  Returns the ``BENCH_select.json`` payload.
    """
    from repro.core.deploy import FrozenSelector
    from repro.core.tiered import TieredSelector
    from repro.features.extract import (
        cheap_features_from_lengths,
        features_from_stats,
    )
    from repro.features.stats import compute_stats

    if model_path is not None:
        frozen = FrozenSelector.load(model_path)
    else:
        from repro.serving.drill import synthetic_frozen_selector

        frozen = synthetic_frozen_selector(seed=seed)
    tiered = TieredSelector.calibrate(frozen)
    matrices = _bench_matrices(n_matrices, seed)

    tier1_lat: list[float] = []
    full_lat: list[float] = []
    tiered_lat: list[float] = []
    for _ in range(repeats):
        for m in matrices:
            t0 = time.perf_counter()
            nrows, ncols = m.shape
            cheap = cheap_features_from_lengths(
                nrows, ncols, m.nnz, m.row_lengths()
            )
            tiered.stage1_with_margin(cheap)
            tier1_lat.append(time.perf_counter() - t0)
        for m in matrices:
            t0 = time.perf_counter()
            vec = features_from_stats(compute_stats(m))
            frozen.assign(vec[None, :])
            full_lat.append(time.perf_counter() - t0)
        started = time.perf_counter()
        for m in matrices:
            t0 = time.perf_counter()
            tiered.select(m)
            tiered_lat.append(time.perf_counter() - t0)
        tiered_wall = time.perf_counter() - started

    tier1_row = _quantiles_ms(tier1_lat)
    full_row = _quantiles_ms(full_lat)
    tiered_row = {
        **_quantiles_ms(tiered_lat),
        "matrices_per_second": (
            round(n_matrices / tiered_wall, 3) if tiered_wall > 0 else None
        ),
        "escalation_rate": round(tiered.escalation_rate, 6),
        "n_tier1": tiered.requests - tiered.escalations,
        "n_escalated": tiered.escalations,
    }
    TELEMETRY.gauge_set("select.bench.tier1_p50_ms", tier1_row["p50_ms"])
    TELEMETRY.gauge_set("select.bench.full_p50_ms", full_row["p50_ms"])
    TELEMETRY.gauge_set(
        "select.bench.tiered_p50_ms", tiered_row["p50_ms"]
    )
    return {
        "bench": "selection_latency",
        "seed": seed,
        "n_matrices": n_matrices,
        "repeats": repeats,
        "tier1": tier1_row,
        "full": full_row,
        "tiered": tiered_row,
    }


def run_select_bench(
    model_path: str | None = None,
    n_matrices: int = 64,
    seed: int = 0,
    repeats: int = 3,
) -> dict:
    """Selection benchmark with telemetry capture; BENCH_select payload.

    Same envelope discipline as :func:`run_bench`: telemetry is switched
    on for the measurement (prior state restored), and the payload
    carries the span cost table and the metrics snapshot — including the
    ``select.*`` counters and the ``select.bench.*`` gauges the
    ``select-smoke`` SLO file evaluates.
    """
    was_enabled = TELEMETRY.enabled
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        result = bench_selection(
            model_path, n_matrices=n_matrices, seed=seed, repeats=repeats
        )
        stages = _stage_costs()
        metrics = TELEMETRY.registry.snapshot()
    finally:
        if not was_enabled:
            TELEMETRY.disable()
    result["stages"] = stages
    result["metrics"] = metrics
    return result


def run_bench(
    model_path: str,
    n_requests: int = 200,
    n_items: int = 256,
    jobs: int = 2,
    seed: int = 0,
    max_batch: int = 8,
    repeats: int = 5,
) -> dict:
    """Full serving+batch benchmark; returns the BENCH_obs.json payload.

    Runs with telemetry enabled (restoring the prior state afterwards)
    so per-stage span costs and the metrics snapshot come along.
    """
    was_enabled = TELEMETRY.enabled
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        serve_row, server = bench_serve(
            model_path, n_requests, seed, max_batch=max_batch
        )
        batch_row = bench_batch(n_items, jobs, seed, repeats=repeats)
        stages = _stage_costs()
        metrics = server.metrics_snapshot()
    finally:
        if not was_enabled:
            TELEMETRY.disable()
    return {
        "bench": "serving_latency",
        "seed": seed,
        "requests": n_requests,
        "serve": serve_row,
        "batch": batch_row,
        "stages": stages,
        "metrics": metrics,
    }


def write_bench(result: dict, path: str) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = [
    "bench_batch",
    "bench_selection",
    "bench_serve",
    "run_bench",
    "run_select_bench",
    "write_bench",
]
