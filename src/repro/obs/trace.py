"""Tracing: a tree of timed spans, exportable as Chrome-trace JSONL.

A :class:`Span` is a context manager; entering pushes it onto a
per-thread stack (so nested ``with`` blocks form a tree), exiting records
the duration from :func:`time.perf_counter` — monotonic, immune to
wall-clock steps.  Finished root spans accumulate on the :class:`Tracer`.

Export is JSON Lines: one event dict per line, each compatible with the
Chrome ``chrome://tracing`` / Perfetto complete-event schema (``ph: "X"``
with microsecond ``ts``/``dur``), plus ``id``/``parent`` args so
:mod:`repro.obs.stats` can rebuild the tree and compute self-times
without relying on timestamp containment.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import IO, Iterator


class Span:
    """One timed region.  Use via ``with tracer.span("name"): ...``.

    Attributes set before exit (via keyword arguments or :meth:`set`)
    travel into the exported event's ``args``.  ``duration`` is in
    seconds and is valid after ``__exit__`` (or mid-flight, as elapsed
    time so far).
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "tid",
                 "start", "end", "children", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self._tracer = tracer
        self.span_id = -1
        self.parent_id = -1
        self.tid = 0
        self.start = 0.0
        self.end: float | None = None
        self.children: list[Span] = []

    def set(self, **attrs) -> "Span":
        """Attach attributes; chainable."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Seconds; elapsed-so-far if the span is still open."""
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False


class Tracer:
    """Span factory and store.

    Thread-safe: each thread keeps its own open-span stack (spans nest
    per thread), while the finished-roots list and the id counter are
    shared under a lock.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._roots: list[Span] = []
        #: perf_counter origin for microsecond ``ts`` values.
        self._epoch = time.perf_counter()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        with self._lock:
            span.span_id = next(self._ids)
        span.tid = threading.get_ident()
        stack = self._stack()
        if stack:
            parent = stack[-1]
            span.parent_id = parent.span_id
            parent.children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate out-of-order exits (generators, leaked spans): unwind
        # to the span being closed rather than corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span.parent_id == -1:
            with self._lock:
                self._roots.append(span)

    # -- introspection -----------------------------------------------------

    @property
    def roots(self) -> list[Span]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return list(self._roots)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def walk(self) -> Iterator[Span]:
        """Every finished span, parents before children."""
        pending = self.roots
        while pending:
            span = pending.pop(0)
            yield span
            pending = span.children + pending

    def total_seconds(self) -> float:
        """Sum of root-span durations (the traced share of wall time)."""
        return sum(s.duration for s in self.roots)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._epoch = time.perf_counter()
        self._local = threading.local()

    # -- cross-process stitching -------------------------------------------

    def export_spans(self) -> list[dict]:
        """Finished spans as plain dicts, ready to cross a process
        boundary (pickle/JSON) and be re-hydrated by :meth:`adopt`.

        Times stay in this process's ``perf_counter`` domain; the
        adopting side re-anchors them (clock domains differ between
        processes, tree *structure* and durations do not).
        """
        out = []
        for span in self.walk():
            out.append({
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "start": span.start,
                "end": span.end if span.end is not None else span.start,
                "attrs": span.attrs,
            })
        return out

    def adopt(
        self,
        spans: list[dict],
        parent: Span | None = None,
        anchor: float | None = None,
    ) -> int:
        """Graft exported worker spans into this tracer's tree.

        Fresh span ids are minted (worker counters all start at 1 and
        would collide); worker-side parent links are remapped through
        the id translation table.  Worker roots become children of
        ``parent`` when given, else roots here.

        ``anchor`` re-anchors the foreign clock domain: the subtree is
        shifted so its *latest end* lands on ``anchor`` (the parent-side
        ``perf_counter`` instant the worker's result arrived).  Shapes
        and durations are preserved exactly; only the offset moves.
        Returns the number of spans adopted.
        """
        if not spans:
            return 0
        shift = 0.0
        if anchor is not None:
            latest = max(s["end"] for s in spans)
            shift = anchor - latest
        id_map: dict[int, Span] = {}
        adopted: list[Span] = []
        for data in spans:
            span = Span(self, data["name"], data.get("attrs"))
            with self._lock:
                span.span_id = next(self._ids)
            span.tid = threading.get_ident()
            span.start = data["start"] + shift
            span.end = data["end"] + shift
            id_map[data["id"]] = span
            adopted.append(span)
            owner = id_map.get(data.get("parent", -1))
            if owner is not None:
                span.parent_id = owner.span_id
                owner.children.append(span)
            elif parent is not None:
                span.parent_id = parent.span_id
                parent.children.append(span)
            else:
                with self._lock:
                    self._roots.append(span)
        return len(adopted)

    # -- export ------------------------------------------------------------

    def _event(self, span: Span) -> dict:
        args = {"id": span.span_id, "parent": span.parent_id}
        args.update(span.attrs)
        return {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": round((span.start - self._epoch) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": 0,
            "tid": span.tid,
            "args": args,
        }

    def events(self) -> list[dict]:
        """Chrome-trace complete events for every finished span."""
        return [self._event(s) for s in self.walk()]

    def to_jsonl(self, fh: IO[str]) -> int:
        """Write one event per line; returns the number of events."""
        n = 0
        for event in self.events():
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")
            n += 1
        return n

    def write_jsonl(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fh:
            return self.to_jsonl(fh)
