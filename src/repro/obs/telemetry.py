"""The global telemetry facade: one switch, zero cost when off.

Instrumented call sites throughout the package go through the module
singleton :data:`TELEMETRY`.  The contract that keeps hot paths honest:

- **Disabled (the default)** — ``span()`` returns a single cached no-op
  context manager (no per-call allocation), and ``inc``/``observe``/
  ``gauge_set`` return after one attribute check.  Instrumentation in a
  per-matrix or per-update loop costs a predicate, nothing more.
- **Enabled** — ``span()`` mints real :class:`~repro.obs.trace.Span`
  objects, and the metric helpers forward to the registry.

Sites with non-trivial setup work (building an attribute dict, reading a
clock) should guard on :attr:`Telemetry.enabled` explicitly so the setup
itself is skipped when telemetry is off.

``timer()`` is the exception to "no-op when disabled": it *always*
measures, returning either a traced span or a plain :class:`Stopwatch`.
Use it where the elapsed time is a computed result (e.g. Table 9
training times), not just diagnostics.
"""

from __future__ import annotations

import time

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import Span, Tracer


class _NoopSpan:
    """Shared, stateless stand-in for a disabled span."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    @property
    def duration(self) -> float:
        return 0.0


#: The one no-op span every disabled ``span()`` call returns.
NOOP_SPAN = _NoopSpan()


class Stopwatch:
    """Minimal always-on timer with the same ``duration`` surface as Span."""

    __slots__ = ("start", "end")

    def __enter__(self) -> "Stopwatch":
        self.start = time.perf_counter()
        self.end = None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        return False

    def set(self, **attrs) -> "Stopwatch":
        return self

    @property
    def duration(self) -> float:
        if self.end is None:
            return time.perf_counter() - self.start
        return self.end - self.start


class Telemetry:
    """Facade bundling a :class:`Tracer` and a :class:`MetricsRegistry`."""

    def __init__(self) -> None:
        self._enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    # -- switch ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "Telemetry":
        self._enabled = True
        return self

    def disable(self) -> "Telemetry":
        self._enabled = False
        return self

    def reset(self) -> None:
        """Drop all spans and metrics (the switch state is kept)."""
        self.registry.reset()
        self.tracer.reset()

    # -- tracing -----------------------------------------------------------

    def span(self, name: str, **attrs):
        """A traced span when enabled, the shared no-op otherwise."""
        if not self._enabled:
            return NOOP_SPAN
        return self.tracer.span(name, **attrs)

    def timer(self, name: str, **attrs):
        """Always measures: a traced span when enabled, a Stopwatch not."""
        if not self._enabled:
            return Stopwatch()
        return self.tracer.span(name, **attrs)

    def current_span(self) -> Span | None:
        return self.tracer.current() if self._enabled else None

    # -- metrics -----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        if self._enabled:
            self.registry.counter(name).inc(amount)

    def gauge_set(self, name: str, value: float) -> None:
        if self._enabled:
            self.registry.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if self._enabled:
            self.registry.histogram(name, buckets=buckets).observe(value)


#: Process-wide singleton used by all instrumented call sites.
TELEMETRY = Telemetry()
