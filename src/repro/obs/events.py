"""Structured JSONL event logging with size-based rotation.

The serving layer's access log: one JSON object per line, written
append-only so a crash can lose at most the final partial line.  Fields
are sorted for byte-stable output (the same events always serialize the
same way — profile/log diffs stay clean across runs).

Rotation is size-based and bounded: when the active file would exceed
``max_bytes`` it is renamed to ``<path>.1`` (shifting ``.1`` → ``.2``
and so on up to ``backups``), so disk usage is capped at roughly
``max_bytes * (backups + 1)`` without an external logrotate.

The logger is thread-safe (one lock around the size check + write) and
deliberately dependency-free — it must work inside the serving loop
without pulling in the stdlib ``logging`` machinery's global state.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any


class EventLog:
    """Append-only JSONL event sink with size-based rotation."""

    def __init__(
        self,
        path: str,
        max_bytes: int = 10 * 1024 * 1024,
        backups: int = 3,
        clock=time.time,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = str(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.clock = clock
        self._lock = threading.Lock()
        self._fh = None
        self.n_events = 0
        self.n_rotations = 0

    # -- file management ---------------------------------------------------

    def _ensure_open(self):
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _rotate_locked(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self.backups == 0:
            # No backups kept: truncate in place.
            open(self.path, "w", encoding="utf-8").close()
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for i in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            if os.path.exists(self.path):
                os.replace(self.path, f"{self.path}.1")
        self.n_rotations += 1

    # -- event emission ----------------------------------------------------

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line: ``{"event": ..., "ts": ..., **fields}``."""
        record = {"event": event, "ts": round(self.clock(), 6)}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            fh = self._ensure_open()
            if fh.tell() + encoded > self.max_bytes and fh.tell() > 0:
                self._rotate_locked()
                fh = self._ensure_open()
            fh.write(line)
            fh.flush()
            self.n_events += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_events(path: str) -> list[dict]:
    """Parse a JSONL event file back into dicts (test/report helper)."""
    out: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


__all__ = ["EventLog", "read_events"]
