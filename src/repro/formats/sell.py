"""Sliced ELLPACK (SELL-C-σ).

The paper's related work (§6) discusses this family explicitly: *"formats
such as sliced ELL, which reorder the rows, may reduce cache reuse, thus
causing a performance tradeoff"* (Kreutzer et al. [15]).  SELL-C-σ fixes
plain ELL's padding blow-up by

- partitioning the rows into *slices* of ``C`` consecutive rows, each
  padded only to its own longest row, and
- optionally pre-sorting rows by length within windows of ``sigma`` rows
  (σ ≥ C), so similar-length rows share a slice and padding shrinks
  further, at the cost of a row permutation that must be undone after
  SpMV.

SELL is not one of the four formats the paper benchmarks (CUSP does not
ship it), so the GPU simulator does not model it; it is provided as a
library extension with exact storage accounting, which the ablation
benches use to quantify how much padding σ-sorting saves.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    VALUE_BYTES,
    VALUE_DTYPE,
    FormatError,
    SparseMatrix,
    check_shape,
    check_vector,
)
from repro.formats.coo import COOMatrix
from repro.formats.ell import PAD


class SELLMatrix(SparseMatrix):
    """SELL-C-σ container.

    Attributes
    ----------
    slice_height
        ``C``: rows per slice (GPU implementations use the warp size).
    sigma
        Sorting window; ``1`` disables row sorting (plain SELL-C).
    row_perm
        Permutation applied to rows before slicing: stored row ``i`` is
        original row ``row_perm[i]``.
    slice_ptr
        Start offset of each slice in the packed arrays, length
        ``n_slices + 1``.
    slice_width
        Padded width of each slice.
    indices, values
        Packed slice-major storage: slice ``s`` occupies
        ``[slice_ptr[s], slice_ptr[s+1])`` as a ``(height, width)`` block
        laid out column-major (slot-major), mirroring the coalesced GPU
        layout.
    """

    format_name = "sell"

    def __init__(
        self,
        shape: tuple[int, int],
        slice_height: int,
        sigma: int,
        row_perm: np.ndarray,
        slice_ptr: np.ndarray,
        slice_width: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.shape = check_shape(shape)
        if slice_height < 1:
            raise FormatError("slice_height must be >= 1")
        if sigma < 1:
            raise FormatError("sigma must be >= 1")
        self.slice_height = int(slice_height)
        self.sigma = int(sigma)
        self.row_perm = np.asarray(row_perm, dtype=INDEX_DTYPE)
        self.slice_ptr = np.asarray(slice_ptr, dtype=INDEX_DTYPE)
        self.slice_width = np.asarray(slice_width, dtype=INDEX_DTYPE)
        self.indices = np.asarray(indices, dtype=INDEX_DTYPE)
        self.values = np.asarray(values, dtype=VALUE_DTYPE)
        n_slices = self.slice_width.shape[0]
        if self.slice_ptr.shape[0] != n_slices + 1:
            raise FormatError("slice_ptr must have n_slices + 1 entries")
        if self.row_perm.shape[0] != self.nrows:
            raise FormatError("row_perm must cover all rows")
        if not np.array_equal(
            np.sort(self.row_perm), np.arange(self.nrows)
        ):
            raise FormatError("row_perm must be a permutation")
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise FormatError("indices/values must be aligned 1-D arrays")
        if self.slice_ptr[-1] != self.indices.shape[0]:
            raise FormatError("slice_ptr[-1] must equal the packed length")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        slice_height: int = 32,
        sigma: int = 1,
    ) -> "SELLMatrix":
        if slice_height < 1:
            raise FormatError("slice_height must be >= 1")
        if sigma < 1:
            raise FormatError("sigma must be >= 1")
        if sigma > 1 and sigma < slice_height:
            raise FormatError("sigma must be >= slice_height when sorting")
        nrows = coo.nrows
        lengths = coo.row_lengths()
        # σ-sorting: descending row length within windows of sigma rows.
        row_perm = np.arange(nrows, dtype=INDEX_DTYPE)
        if sigma > 1:
            for start in range(0, nrows, sigma):
                window = slice(start, min(start + sigma, nrows))
                order = np.argsort(lengths[window], kind="stable")[::-1]
                row_perm[window] = row_perm[window][order]
        perm_lengths = lengths[row_perm]

        n_slices = (nrows + slice_height - 1) // slice_height
        slice_width = np.zeros(n_slices, dtype=INDEX_DTYPE)
        for s in range(n_slices):
            block = perm_lengths[s * slice_height : (s + 1) * slice_height]
            slice_width[s] = int(block.max(initial=0))
        heights = np.minimum(
            slice_height, nrows - np.arange(n_slices) * slice_height
        )
        sizes = slice_width * heights
        slice_ptr = np.zeros(n_slices + 1, dtype=INDEX_DTYPE)
        np.cumsum(sizes, out=slice_ptr[1:])

        indices = np.full(int(slice_ptr[-1]), PAD, dtype=INDEX_DTYPE)
        values = np.zeros(int(slice_ptr[-1]), dtype=VALUE_DTYPE)
        if coo.nnz:
            # Entry positions within their (original) rows.
            starts = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
            np.cumsum(lengths, out=starts[1:])
            slot = np.arange(coo.nnz, dtype=INDEX_DTYPE) - starts[coo.rows]
            # Map original row -> stored (permuted) position.
            inv_perm = np.empty(nrows, dtype=INDEX_DTYPE)
            inv_perm[row_perm] = np.arange(nrows, dtype=INDEX_DTYPE)
            stored_row = inv_perm[coo.rows]
            s_idx = stored_row // slice_height
            lane = stored_row - s_idx * slice_height
            # Column-major (slot-major) layout within the slice block.
            offset = (
                slice_ptr[s_idx]
                + slot * heights[s_idx]
                + lane
            )
            indices[offset] = coo.cols
            values[offset] = coo.vals
        return cls(
            coo.shape,
            slice_height,
            sigma,
            row_perm,
            slice_ptr,
            slice_width,
            indices,
            values,
        )

    # -- geometry ---------------------------------------------------------

    @property
    def n_slices(self) -> int:
        return int(self.slice_width.shape[0])

    @property
    def padded_size(self) -> int:
        """Total stored slots including padding."""
        return int(self.slice_ptr[-1])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.indices != PAD))

    def fill_ratio(self) -> float:
        nnz = self.nnz
        return self.padded_size / nnz if nnz else float("inf")

    def memory_bytes(self) -> int:
        return (
            self.padded_size * (INDEX_BYTES + VALUE_BYTES)
            + (self.n_slices + 1) * INDEX_BYTES
            + self.n_slices * INDEX_BYTES
            # the permutation must travel with the matrix when sigma > 1
            + (self.nrows * INDEX_BYTES if self.sigma > 1 else 0)
        )

    # -- kernels ------------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """SELL SpMV: per-slice masked multiply, then undo the permutation."""
        x = check_vector(x, self.ncols)
        y_perm = np.zeros(self.nrows, dtype=VALUE_DTYPE)
        for s in range(self.n_slices):
            lo, hi = int(self.slice_ptr[s]), int(self.slice_ptr[s + 1])
            width = int(self.slice_width[s])
            if width == 0:
                continue
            height = (hi - lo) // width
            block_idx = self.indices[lo:hi].reshape(width, height)
            block_val = self.values[lo:hi].reshape(width, height)
            valid = block_idx != PAD
            gathered = np.where(valid, x[np.where(valid, block_idx, 0)], 0.0)
            base = s * self.slice_height
            y_perm[base : base + height] = (block_val * gathered).sum(axis=0)
        y = np.zeros(self.nrows, dtype=VALUE_DTYPE)
        y[self.row_perm] = y_perm
        return y

    def to_coo(self) -> COOMatrix:
        rows_list, cols_list, vals_list = [], [], []
        for s in range(self.n_slices):
            lo, hi = int(self.slice_ptr[s]), int(self.slice_ptr[s + 1])
            width = int(self.slice_width[s])
            if width == 0:
                continue
            height = (hi - lo) // width
            block_idx = self.indices[lo:hi].reshape(width, height)
            block_val = self.values[lo:hi].reshape(width, height)
            slot, lane = np.nonzero(block_idx != PAD)
            stored_row = s * self.slice_height + lane
            rows_list.append(self.row_perm[stored_row])
            cols_list.append(block_idx[slot, lane])
            vals_list.append(block_val[slot, lane])
        if not rows_list:
            return COOMatrix.empty(self.shape)
        return COOMatrix(
            self.shape,
            np.concatenate(rows_list),
            np.concatenate(cols_list),
            np.concatenate(vals_list),
        )
