"""ELLPACK (ELL) format.

The paper (§2.1): *"The ELLPACK (ELL) format stores a sparse matrix A as a
dense rectangular matrix by shifting the nonzeros in each row to the left
and zero-padding all rows that have fewer nonzeros than the maximum. The
storage size of ELL thus depends on the maximum number of nonzeros in a row
of A, which is problematic for matrices with a large deviation in the
number of nonzeros per row."*

CUSP refuses to build ELL structures whose padded size explodes relative to
the number of nonzeros; the paper omits matrices *"where the CUSP library
failed to generate the ELL variant because of restrictions on the size"*.
We reproduce that behaviour with :class:`EllSizeError` controlled by
``max_fill`` (CUSP's ``ell_matrix`` conversion uses a 3× fill bound).
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    VALUE_BYTES,
    VALUE_DTYPE,
    FormatError,
    SparseMatrix,
    check_shape,
    check_vector,
)
from repro.formats.coo import COOMatrix

#: CUSP's default bound on padded-size / nnz during ELL conversion.
DEFAULT_MAX_FILL = 3.0

#: Padding marker in the column-index array (CUSP uses -1).
PAD = -1


class EllSizeError(FormatError):
    """ELL conversion refused: padding would exceed the fill bound."""


class ELLMatrix(SparseMatrix):
    """ELL container: dense ``(nrows, width)`` index and value arrays.

    ``indices[i, k] == PAD`` marks padding slots; the corresponding value is
    zero.  ``width`` equals the maximum row length of the source matrix.
    """

    format_name = "ell"

    def __init__(
        self,
        shape: tuple[int, int],
        indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.shape = check_shape(shape)
        self.indices = np.asarray(indices, dtype=INDEX_DTYPE)
        self.values = np.asarray(values, dtype=VALUE_DTYPE)
        if self.indices.ndim != 2 or self.indices.shape[0] != self.nrows:
            raise FormatError("ELL indices must be (nrows, width)")
        if self.indices.shape != self.values.shape:
            raise FormatError("ELL indices and values shapes differ")
        valid = self.indices != PAD
        if valid.any():
            idx = self.indices[valid]
            if idx.min() < 0 or idx.max() >= self.ncols:
                raise FormatError("ELL column index out of range")
        if np.any(self.values[~valid] != 0.0):
            raise FormatError("ELL padding slots must hold zero values")
        self._valid = valid

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, max_fill: float | None = DEFAULT_MAX_FILL
    ) -> "ELLMatrix":
        lengths = coo.row_lengths()
        width = int(lengths.max(initial=0))
        padded = width * coo.nrows
        if (
            max_fill is not None
            and coo.nnz > 0
            and padded > max_fill * coo.nnz
            # CUSP only applies the bound beyond a small absolute size.
            and padded > 4096
        ):
            raise EllSizeError(
                f"ELL fill {padded / max(coo.nnz, 1):.2f}x exceeds bound "
                f"{max_fill}x (width={width}, nrows={coo.nrows}, nnz={coo.nnz})"
            )
        indices = np.full((coo.nrows, width), PAD, dtype=INDEX_DTYPE)
        values = np.zeros((coo.nrows, width), dtype=VALUE_DTYPE)
        if coo.nnz:
            # Canonical COO is row-major sorted: the slot of each entry is
            # its ordinal position within its row.
            starts = np.zeros(coo.nrows + 1, dtype=INDEX_DTYPE)
            np.cumsum(lengths, out=starts[1:])
            slot = np.arange(coo.nnz, dtype=INDEX_DTYPE) - starts[coo.rows]
            indices[coo.rows, slot] = coo.cols
            values[coo.rows, slot] = coo.vals
        return cls(coo.shape, indices, values)

    @property
    def width(self) -> int:
        return int(self.indices.shape[1])

    @property
    def nnz(self) -> int:
        return int(self._valid.sum())

    @property
    def padded_size(self) -> int:
        """Total number of stored slots including padding."""
        return int(self.indices.size)

    def fill_ratio(self) -> float:
        """padded_size / nnz; 1.0 means no padding at all."""
        return self.padded_size / self.nnz if self.nnz else float("inf")

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """ELL SpMV: one fused multiply per slot, masked over padding.

        Mirrors the GPU kernel: thread ``i`` walks the ``width`` slots of row
        ``i``; slot-major array layout gives coalesced loads, which is why
        the GPU cost model charges ELL a low per-byte cost but the full
        padded volume.
        """
        x = check_vector(x, self.ncols)
        safe_idx = np.where(self._valid, self.indices, 0)
        gathered = np.where(self._valid, x[safe_idx], 0.0)
        return (self.values * gathered).sum(axis=1)

    def to_coo(self) -> COOMatrix:
        rows, slots = np.nonzero(self._valid)
        return COOMatrix(
            self.shape,
            rows,
            self.indices[rows, slots],
            self.values[rows, slots],
        )

    def memory_bytes(self) -> int:
        return self.padded_size * (INDEX_BYTES + VALUE_BYTES)
