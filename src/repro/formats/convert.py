"""Format-conversion dispatch: any format → any format via canonical COO."""

from __future__ import annotations

from typing import Callable

from repro.formats.base import FormatError, SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.sell import SELLMatrix

#: Registry of all formats by name.  The four CUSP-benchmarked formats the
#: paper evaluates come first.
FORMATS: dict[str, Callable[[COOMatrix], SparseMatrix]] = {
    "csr": CSRMatrix.from_coo,
    "coo": lambda coo: coo,
    "ell": ELLMatrix.from_coo,
    "hyb": HYBMatrix.from_coo,
    "csc": CSCMatrix.from_coo,
    "dia": DIAMatrix.from_coo,
    "sell": SELLMatrix.from_coo,
}

#: The formats the paper benchmarks (§5.1): "We limit benchmarking to four
#: sparse formats, namely CSR, COO, ELL, and HYB".
BENCHMARK_FORMATS: tuple[str, ...] = ("coo", "csr", "ell", "hyb")


def convert(matrix: SparseMatrix, fmt: str, **kwargs) -> SparseMatrix:
    """Convert ``matrix`` to the format named ``fmt``.

    Keyword arguments are forwarded to the target format's ``from_coo``
    (e.g. ``max_fill`` for ELL/DIA, ``width`` for HYB).
    """
    fmt = fmt.lower()
    if fmt not in FORMATS:
        raise FormatError(
            f"unknown format {fmt!r}; available: {sorted(FORMATS)}"
        )
    if matrix.format_name == fmt and not kwargs:
        return matrix
    return FORMATS[fmt](matrix.to_coo(), **kwargs)
