"""Diagonal (DIA) format.

The paper (§2.1): *"Other formats, like diagonal (DIA), take advantage of
specific sparsity patterns but can also take O(n^2) space in the worst
case."*  The paper does not benchmark DIA (CUSP's four benchmarked formats
are CSR/COO/ELL/HYB) but three of the Table-1 features describe the DIA
structure (``diagonals``, ``dia_size``, ``dia_frac``), so the format is part
of the substrate.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    VALUE_BYTES,
    VALUE_DTYPE,
    FormatError,
    SparseMatrix,
    check_shape,
    check_vector,
)
from repro.formats.coo import COOMatrix

#: Refuse DIA structures whose stored size exceeds this multiple of nnz
#: (mirrors CUSP's conversion guard against the O(n^2) blow-up).
DEFAULT_MAX_FILL = 10.0


class DiaSizeError(FormatError):
    """DIA conversion refused: too many occupied diagonals."""


class DIAMatrix(SparseMatrix):
    """DIA container: sorted ``offsets`` (ndiags,) and ``data`` (nrows, ndiags).

    ``data[i, d]`` holds ``A[i, i + offsets[d]]``; slots falling outside the
    matrix or not occupied are zero.
    """

    format_name = "dia"

    def __init__(
        self,
        shape: tuple[int, int],
        offsets: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = check_shape(shape)
        self.offsets = np.asarray(offsets, dtype=INDEX_DTYPE)
        self.data = np.asarray(data, dtype=VALUE_DTYPE)
        if self.offsets.ndim != 1:
            raise FormatError("DIA offsets must be 1-D")
        if np.any(np.diff(self.offsets) <= 0):
            raise FormatError("DIA offsets must be strictly increasing")
        if self.data.shape != (self.nrows, self.offsets.shape[0]):
            raise FormatError(
                f"DIA data must be (nrows, ndiags) = "
                f"({self.nrows}, {self.offsets.shape[0]}), got {self.data.shape}"
            )

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, max_fill: float | None = DEFAULT_MAX_FILL
    ) -> "DIAMatrix":
        offsets = coo.diagonal_offsets()
        ndiags = int(offsets.shape[0])
        stored = ndiags * coo.nrows
        if (
            max_fill is not None
            and coo.nnz > 0
            and stored > max_fill * coo.nnz
            and stored > 4096
        ):
            raise DiaSizeError(
                f"DIA fill {stored / max(coo.nnz, 1):.2f}x exceeds bound "
                f"{max_fill}x ({ndiags} diagonals)"
            )
        data = np.zeros((coo.nrows, ndiags), dtype=VALUE_DTYPE)
        if coo.nnz:
            diag_pos = np.searchsorted(offsets, coo.cols - coo.rows)
            data[coo.rows, diag_pos] = coo.vals
        return cls(coo.shape, offsets, data)

    @property
    def ndiags(self) -> int:
        return int(self.offsets.shape[0])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def stored_size(self) -> int:
        """Total stored slots, ``ndiags * nrows`` (feature ``dia_size``)."""
        return self.ndiags * self.nrows

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """DIA SpMV: one shifted AXPY per occupied diagonal."""
        x = check_vector(x, self.ncols)
        y = np.zeros(self.nrows, dtype=VALUE_DTYPE)
        for d, off in enumerate(self.offsets):
            off = int(off)
            # Rows i with a valid column j = i + off inside the matrix.
            i_lo = max(0, -off)
            i_hi = min(self.nrows, self.ncols - off)
            if i_hi <= i_lo:
                continue
            rows = slice(i_lo, i_hi)
            cols = slice(i_lo + off, i_hi + off)
            y[rows] += self.data[rows, d] * x[cols]
        return y

    def to_coo(self) -> COOMatrix:
        rows, diag_pos = np.nonzero(self.data)
        cols = rows + self.offsets[diag_pos]
        keep = (cols >= 0) & (cols < self.ncols)
        return COOMatrix(
            self.shape, rows[keep], cols[keep], self.data[rows, diag_pos][keep]
        )

    def memory_bytes(self) -> int:
        return self.ndiags * INDEX_BYTES + self.stored_size * VALUE_BYTES
