"""Coordinate (COO) format: explicit ``(row, col, value)`` triples.

The paper (§2.1): *"The coordinate (COO) format stores the matrix in three
dense arrays of length NNZ called row, column, and value. The position of
every nonzero value in the matrix is given explicitly."*

COO is the canonical interchange format of this package: every other format
converts to/from it, and the synthetic generators emit it.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    VALUE_BYTES,
    VALUE_DTYPE,
    FormatError,
    SparseMatrix,
    check_shape,
    check_vector,
)


class COOMatrix(SparseMatrix):
    """Canonical COO: row-major sorted, duplicate entries summed.

    Parameters
    ----------
    shape
        ``(nrows, ncols)``.
    rows, cols, vals
        Parallel arrays of equal length.  They are canonicalised (sorted
        row-major, duplicates summed, explicit zeros kept — CUSP also keeps
        them, and structural nonzeros are what the formats store).
    """

    format_name = "coo"

    def __init__(
        self,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        self.shape = check_shape(shape)
        rows = np.asarray(rows, dtype=INDEX_DTYPE)
        cols = np.asarray(cols, dtype=INDEX_DTYPE)
        vals = np.asarray(vals, dtype=VALUE_DTYPE)
        if not (rows.ndim == cols.ndim == vals.ndim == 1):
            raise FormatError("COO triples must be 1-D arrays")
        if not (rows.shape == cols.shape == vals.shape):
            raise FormatError(
                f"COO triple lengths differ: {rows.shape}, {cols.shape}, {vals.shape}"
            )
        if rows.size:
            if rows.min(initial=0) < 0 or rows.max(initial=0) >= self.shape[0]:
                raise FormatError("COO row index out of range")
            if cols.min(initial=0) < 0 or cols.max(initial=0) >= self.shape[1]:
                raise FormatError("COO column index out of range")
        self.rows, self.cols, self.vals = _canonicalise(
            self.shape, rows, cols, vals
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Build from a dense 2-D array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim != 2:
            raise FormatError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "COOMatrix":
        z = np.empty(0, dtype=INDEX_DTYPE)
        return cls(shape, z, z, np.empty(0, dtype=VALUE_DTYPE))

    # -- SparseMatrix interface ----------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.vals.shape[0])

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """COO SpMV: scatter-add of ``vals * x[cols]`` into the row slots.

        This mirrors the GPU COO kernel's segmented reduction: each stored
        entry contributes independently, so the kernel is insensitive to the
        row-length distribution (the property the GPU cost model exploits).
        """
        x = check_vector(x, self.ncols)
        products = self.vals * x[self.cols]
        return np.bincount(
            self.rows, weights=products, minlength=self.nrows
        ).astype(VALUE_DTYPE, copy=False)

    def to_coo(self) -> "COOMatrix":
        return self

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=VALUE_DTYPE)
        dense[self.rows, self.cols] = self.vals
        return dense

    def memory_bytes(self) -> int:
        return self.nnz * (2 * INDEX_BYTES + VALUE_BYTES)

    # -- structure queries used across the package ---------------------------

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row, shape ``(nrows,)``."""
        return np.bincount(self.rows, minlength=self.nrows).astype(INDEX_DTYPE)

    def diagonal_offsets(self) -> np.ndarray:
        """Sorted distinct occupied diagonals as offsets ``col - row``."""
        if self.nnz == 0:
            return np.empty(0, dtype=INDEX_DTYPE)
        return np.unique(self.cols - self.rows)

    def transpose(self) -> "COOMatrix":
        return COOMatrix(
            (self.ncols, self.nrows), self.cols, self.rows, self.vals
        )

    def permute(
        self,
        row_perm: np.ndarray | None = None,
        col_perm: np.ndarray | None = None,
    ) -> "COOMatrix":
        """Apply row/column permutations: ``B[p[i], q[j]] = A[i, j]``.

        Used by the dataset augmentation step (the paper derives additional
        CNN training instances from SuiteSparse via such permutations).
        """
        rows, cols = self.rows, self.cols
        if row_perm is not None:
            row_perm = _check_perm(row_perm, self.nrows, "row")
            rows = row_perm[rows]
        if col_perm is not None:
            col_perm = _check_perm(col_perm, self.ncols, "column")
            cols = col_perm[cols]
        return COOMatrix(self.shape, rows, cols, self.vals)


def _check_perm(perm: np.ndarray, n: int, kind: str) -> np.ndarray:
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise FormatError(f"invalid {kind} permutation of length {n}")
    return perm


def _canonicalise(
    shape: tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort triples row-major and sum duplicates."""
    if rows.size == 0:
        return rows, cols, vals
    # Row-major order: lexsort's last key is primary.
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    # Collapse duplicates (same row and col) by summation.
    keys = rows * shape[1] + cols
    is_first = np.empty(keys.shape, dtype=bool)
    is_first[0] = True
    np.not_equal(keys[1:], keys[:-1], out=is_first[1:])
    if is_first.all():
        return rows, cols, vals
    group_ids = np.cumsum(is_first) - 1
    summed = np.bincount(group_ids, weights=vals)
    return rows[is_first], cols[is_first], summed.astype(VALUE_DTYPE)
