"""MatrixMarket (.mtx) I/O.

The paper's benchmark pipeline reads SuiteSparse matrices from ``.mtx``
files (§5.4 lists file reading as a dominant benchmarking cost).  This
module implements the coordinate MatrixMarket exchange format: real /
integer / pattern fields with general / symmetric / skew-symmetric
symmetry, which covers the SuiteSparse collection.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.formats.base import FormatError, INDEX_DTYPE, VALUE_DTYPE
from repro.formats.coo import COOMatrix

_HEADER_PREFIX = "%%MatrixMarket"
_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


class MatrixMarketError(FormatError):
    """Raised on malformed MatrixMarket input."""


def read_matrix_market(source: str | Path | TextIO) -> COOMatrix:
    """Read a coordinate MatrixMarket file into a :class:`COOMatrix`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as fh:
            return _read(fh)
    return _read(source)


def write_matrix_market(
    matrix: COOMatrix, target: str | Path | TextIO, comment: str = ""
) -> None:
    """Write a :class:`COOMatrix` as coordinate real general MatrixMarket."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            _write(matrix, fh, comment)
    else:
        _write(matrix, target, comment)


def matrix_market_string(matrix: COOMatrix, comment: str = "") -> str:
    """Serialise to an in-memory MatrixMarket string."""
    buf = io.StringIO()
    _write(matrix, buf, comment)
    return buf.getvalue()


def _read(fh: TextIO) -> COOMatrix:
    header = fh.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise MatrixMarketError(f"missing MatrixMarket banner: {header!r}")
    parts = header.strip().split()
    if len(parts) != 5:
        raise MatrixMarketError(f"malformed banner: {header!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise MatrixMarketError(
            f"only 'matrix coordinate' is supported, got {obj!r} {fmt!r}"
        )
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    # Skip comments and blank lines; the first data line is the size line.
    size_line = ""
    for line in fh:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if not size_line:
        raise MatrixMarketError("missing size line")
    try:
        nrows, ncols, nnz = (int(tok) for tok in size_line.split())
    except ValueError as exc:
        raise MatrixMarketError(f"malformed size line: {size_line!r}") from exc

    rows = np.empty(nnz, dtype=INDEX_DTYPE)
    cols = np.empty(nnz, dtype=INDEX_DTYPE)
    vals = np.empty(nnz, dtype=VALUE_DTYPE)
    count = 0
    for line in fh:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        toks = stripped.split()
        if count >= nnz:
            raise MatrixMarketError("more entries than declared nnz")
        try:
            rows[count] = int(toks[0]) - 1  # MatrixMarket is 1-based
            cols[count] = int(toks[1]) - 1
            if field == "pattern":
                vals[count] = 1.0
            else:
                vals[count] = float(toks[2])
        except (ValueError, IndexError) as exc:
            raise MatrixMarketError(f"malformed entry line: {stripped!r}") from exc
        count += 1
    if count != nnz:
        raise MatrixMarketError(f"declared {nnz} entries, found {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        # Mirror every off-diagonal entry across the diagonal.
        off_diag = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        mirrored_vals = sign * vals[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, mirrored_vals])
    return COOMatrix((nrows, ncols), rows, cols, vals)


def _write(matrix: COOMatrix, fh: TextIO, comment: str) -> None:
    coo = matrix.to_coo()
    fh.write(f"{_HEADER_PREFIX} matrix coordinate real general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    fh.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
    for r, c, v in zip(coo.rows, coo.cols, coo.vals):
        fh.write(f"{int(r) + 1} {int(c) + 1} {float(v)!r}\n")
