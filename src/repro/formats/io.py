"""MatrixMarket (.mtx) I/O.

The paper's benchmark pipeline reads SuiteSparse matrices from ``.mtx``
files (§5.4 lists file reading as a dominant benchmarking cost).  This
module implements the coordinate MatrixMarket exchange format: real /
integer / pattern fields with general / symmetric / skew-symmetric
symmetry, which covers the SuiteSparse collection.

The reader is written for hostile input: it never allocates storage from
the *declared* nnz (a forged size line cannot trigger a giant
allocation), it decodes bytes as latin-1 so stray non-ASCII comment
bytes in real SuiteSparse files cannot crash it, and every malformed
input raises :class:`MatrixMarketError` carrying a machine-readable
``code`` — the serving gateway turns those codes into structured
per-request error responses.  A :class:`ReadPolicy` optionally tightens
the reader further (size limits, reject NaN/Inf, reject duplicate
coordinates); the default policy preserves the historical permissive
behaviour (duplicates summed, non-finite values kept).
"""

from __future__ import annotations

import io
import math
import mmap
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, NamedTuple, TextIO

import numpy as np

from repro.formats.base import FormatError, INDEX_DTYPE, VALUE_DTYPE
from repro.formats.coo import COOMatrix

_HEADER_PREFIX = "%%MatrixMarket"
_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric", "skew-symmetric"}

#: Default number of stored entries per streamed COO block.
DEFAULT_CHUNK_NNZ = 65536


class MatrixMarketError(FormatError):
    """Raised on malformed MatrixMarket input.

    ``code`` is a short machine-readable tag (``bad_banner``,
    ``bad_size``, ``bad_entry``, ``count_mismatch``, ``too_large``,
    ``oversized_header``, ``nonfinite_value``, ``duplicate_entry``,
    ``index_out_of_range``, ``unsupported``, ``invalid``) used by the
    serving layer's structured error responses.
    """

    def __init__(self, message: str, code: str = "invalid") -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class ReadPolicy:
    """Validation limits for reading untrusted MatrixMarket input.

    ``None`` limits are unenforced.  The default instance reproduces the
    historical reader behaviour exactly; the serving gateway builds a
    strict instance from its own byte/size budgets.
    """

    #: Reject size lines declaring more rows or columns than this.
    max_dim: int | None = None
    #: Reject size lines declaring more entries than this.
    max_nnz: int | None = None
    #: Reject banner/comment preambles longer than this many characters.
    max_header_bytes: int | None = None
    #: Reject NaN/Inf values (a NaN poisons every downstream feature).
    allow_nonfinite: bool = True
    #: ``"sum"`` merges duplicate coordinates (CUSP behaviour);
    #: ``"reject"`` raises ``duplicate_entry``.
    duplicates: str = "sum"

    def __post_init__(self) -> None:
        if self.duplicates not in ("sum", "reject"):
            raise ValueError(
                f"duplicates must be 'sum' or 'reject', got {self.duplicates!r}"
            )


#: Permissive default: exactly the historical reader semantics.
DEFAULT_POLICY = ReadPolicy()


class MatrixMarketHeader(NamedTuple):
    """Parsed banner + size line of a coordinate MatrixMarket file.

    ``nnz`` is the declared count of *stored* entries — for symmetric
    matrices the mirrored off-diagonal entries are not included.
    """

    field: str
    symmetry: str
    nrows: int
    ncols: int
    nnz: int


class COOBlock(NamedTuple):
    """One fixed-size chunk of stored COO entries from a streamed read."""

    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray


def read_matrix_market(
    source: str | Path | TextIO, policy: ReadPolicy = DEFAULT_POLICY
) -> COOMatrix:
    """Read a coordinate MatrixMarket file into a :class:`COOMatrix`.

    Implemented on top of :func:`read_matrix_market_streaming`, so the
    in-memory and streaming readers cannot drift: both run the same
    per-line validation in the same order.
    """
    stream = read_matrix_market_streaming(source, policy)
    header = next(stream)
    row_chunks: list[np.ndarray] = []
    col_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray] = []
    for block in stream:
        row_chunks.append(block.rows)
        col_chunks.append(block.cols)
        val_chunks.append(block.vals)
    return assemble_matrix(header, row_chunks, col_chunks, val_chunks)


def read_matrix_market_streaming(
    source: str | Path | TextIO,
    policy: ReadPolicy = DEFAULT_POLICY,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
    use_mmap: bool = True,
) -> Iterator[MatrixMarketHeader | COOBlock]:
    """Stream a coordinate MatrixMarket file as fixed-size COO blocks.

    A generator that first yields a :class:`MatrixMarketHeader` (after
    validating the banner and enforcing the policy's ``max_dim`` /
    ``max_nnz`` limits *at the size line*, before any entry is read),
    then yields :class:`COOBlock` chunks of at most ``chunk_nnz``
    *stored* entries in file order.  Symmetry mirroring is NOT applied —
    callers that need the expanded matrix use :func:`assemble_matrix`
    (or :func:`read_matrix_market`, which does both).

    All :class:`ReadPolicy` hostile-input guarantees of the in-memory
    reader hold: allocation is driven by actual file content (never the
    declared nnz), errors carry the same machine-readable codes, and —
    with ``duplicates="reject"`` — the same duplicate coordinate is
    reported.  Because the check order matches the in-memory reader,
    blocks may have been yielded before an error is raised; a raised
    error invalidates every block yielded so far.

    For on-disk paths the file is read through ``mmap`` when possible
    (``use_mmap=True``, the default), falling back to buffered text I/O
    for empty files, platforms without mmap, or files containing
    carriage returns (where universal-newline semantics must decide
    line boundaries).
    """
    if chunk_nnz < 1:
        raise ValueError(f"chunk_nnz must be >= 1, got {chunk_nnz}")
    if isinstance(source, (str, Path)):
        return _stream_path(source, policy, chunk_nnz, use_mmap)
    return _stream_lines(iter(source), policy, chunk_nnz)


def assemble_matrix(
    header: MatrixMarketHeader,
    row_chunks: list[np.ndarray],
    col_chunks: list[np.ndarray],
    val_chunks: list[np.ndarray],
) -> COOMatrix:
    """Build the :class:`COOMatrix` for streamed blocks (applies symmetry).

    Concatenating the streamed chunks reproduces the in-memory reader's
    entry order exactly, so duplicate summation inside ``COOMatrix``
    canonicalisation — whose float result is order-sensitive — is
    bit-identical across chunk sizes.
    """
    rows = _concat(row_chunks, INDEX_DTYPE)
    cols = _concat(col_chunks, INDEX_DTYPE)
    vals = _concat(val_chunks, VALUE_DTYPE)
    if header.symmetry in ("symmetric", "skew-symmetric"):
        # Mirror every off-diagonal entry across the diagonal.
        off_diag = rows != cols
        sign = -1.0 if header.symmetry == "skew-symmetric" else 1.0
        rows, cols, vals = (
            np.concatenate([rows, cols[off_diag]]),
            np.concatenate([cols, rows[off_diag]]),
            np.concatenate([vals, sign * vals[off_diag]]),
        )
    try:
        return COOMatrix((header.nrows, header.ncols), rows, cols, vals)
    except MatrixMarketError:
        raise
    except FormatError as exc:
        # The fuzz contract: any malformed input is a MatrixMarketError,
        # never a bare construction error from deeper layers.
        raise MatrixMarketError(str(exc), code="invalid") from exc


def _concat(chunks: list[np.ndarray], dtype: np.dtype) -> np.ndarray:
    if not chunks:
        return np.array([], dtype=dtype)
    if len(chunks) == 1:
        return chunks[0]
    return np.concatenate(chunks)


def write_matrix_market(
    matrix: COOMatrix, target: str | Path | TextIO, comment: str = ""
) -> None:
    """Write a :class:`COOMatrix` as coordinate real general MatrixMarket."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            _write(matrix, fh, comment)
    else:
        _write(matrix, target, comment)


def matrix_market_string(matrix: COOMatrix, comment: str = "") -> str:
    """Serialise to an in-memory MatrixMarket string."""
    buf = io.StringIO()
    _write(matrix, buf, comment)
    return buf.getvalue()


def _parse_banner(header: str) -> tuple[str, str]:
    if not header.lstrip().startswith(_HEADER_PREFIX):
        raise MatrixMarketError(
            f"missing MatrixMarket banner: {header!r}", code="bad_banner"
        )
    parts = header.strip().split()
    if len(parts) != 5:
        raise MatrixMarketError(f"malformed banner: {header!r}", code="bad_banner")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise MatrixMarketError(
            f"only 'matrix coordinate' is supported, got {obj!r} {fmt!r}",
            code="unsupported",
        )
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}", code="unsupported")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise MatrixMarketError(
            f"unsupported symmetry {symmetry!r}", code="unsupported"
        )
    return field, symmetry


def _parse_size_line(size_line: str, policy: ReadPolicy) -> tuple[int, int, int]:
    try:
        nrows, ncols, nnz = (int(tok) for tok in size_line.split())
    except ValueError as exc:
        raise MatrixMarketError(
            f"malformed size line: {size_line!r}", code="bad_size"
        ) from exc
    if nrows <= 0 or ncols <= 0 or nnz < 0:
        raise MatrixMarketError(
            f"non-positive dimensions in size line: {size_line!r}",
            code="bad_size",
        )
    if policy.max_dim is not None and max(nrows, ncols) > policy.max_dim:
        raise MatrixMarketError(
            f"declared dimensions {nrows}x{ncols} exceed limit "
            f"{policy.max_dim}",
            code="too_large",
        )
    if policy.max_nnz is not None and nnz > policy.max_nnz:
        raise MatrixMarketError(
            f"declared nnz {nnz} exceeds limit {policy.max_nnz}",
            code="too_large",
        )
    return nrows, ncols, nnz


def _stream_path(
    path: str | Path, policy: ReadPolicy, chunk_nnz: int, use_mmap: bool
) -> Iterator[MatrixMarketHeader | COOBlock]:
    if use_mmap:
        with open(path, "rb") as bf:
            try:
                mm = mmap.mmap(bf.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                # Empty file, mmap-less filesystem, ...: buffered text
                # I/O below handles every case the historical reader did.
                mm = None
            if mm is not None:
                with mm:
                    # Carriage returns demand universal-newline semantics
                    # to pick line boundaries exactly as the text-mode
                    # reader would; one memchr sweep decides the path.
                    if mm.find(b"\r") == -1:
                        yield from _stream_lines(
                            _mmap_lines(mm), policy, chunk_nnz
                        )
                        return
    # latin-1 decodes every byte sequence, so non-ASCII comment lines
    # in real SuiteSparse files cannot abort the read with a
    # UnicodeDecodeError; malformed *data* still raises
    # MatrixMarketError below.
    with open(path, "r", encoding="latin-1") as fh:
        yield from _stream_lines(iter(fh), policy, chunk_nnz)


def _mmap_lines(mm: mmap.mmap) -> Iterator[str]:
    """Lines (with trailing newline, latin-1 decoded) from a CR-free mmap."""
    pos = 0
    end = len(mm)
    while pos < end:
        nl = mm.find(b"\n", pos)
        stop = end if nl < 0 else nl + 1
        yield mm[pos:stop].decode("latin-1")
        pos = stop


def _stream_lines(
    lines: Iterator[str], policy: ReadPolicy, chunk_nnz: int
) -> Iterator[MatrixMarketHeader | COOBlock]:
    field, symmetry = _parse_banner(next(lines, ""))

    # Skip comments and blank lines; the first data line is the size line.
    size_line = ""
    header_bytes = 0
    for line in lines:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
        header_bytes += len(line)
        if (
            policy.max_header_bytes is not None
            and header_bytes > policy.max_header_bytes
        ):
            raise MatrixMarketError(
                f"comment preamble exceeds {policy.max_header_bytes} bytes",
                code="oversized_header",
            )
    if not size_line:
        raise MatrixMarketError("missing size line", code="bad_size")
    nrows, ncols, nnz = _parse_size_line(size_line, policy)
    yield MatrixMarketHeader(field, symmetry, nrows, ncols, nnz)

    # Accumulate into Python lists sized by what the file actually
    # contains — never np.empty(declared nnz), so a forged size line
    # cannot demand a giant allocation.  Under ``duplicates="reject"``
    # the yielded index chunks are additionally retained so the
    # end-of-stream check can run the exact in-memory lexsort pass
    # (reporting the identical first row-major duplicate).
    reject = policy.duplicates == "reject"
    kept_rows: list[np.ndarray] = []
    kept_cols: list[np.ndarray] = []
    rows_list: list[int] = []
    cols_list: list[int] = []
    vals_list: list[float] = []
    count = 0
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        if count >= nnz:
            raise MatrixMarketError(
                "more entries than declared nnz", code="count_mismatch"
            )
        toks = stripped.split()
        try:
            r = int(toks[0]) - 1  # MatrixMarket is 1-based
            c = int(toks[1]) - 1
            if field == "pattern":
                v = 1.0
            else:
                v = float(toks[2])
        except (ValueError, IndexError) as exc:
            raise MatrixMarketError(
                f"malformed entry line: {stripped!r}", code="bad_entry"
            ) from exc
        if not (0 <= r < nrows and 0 <= c < ncols):
            raise MatrixMarketError(
                f"coordinate ({r + 1}, {c + 1}) outside declared "
                f"{nrows}x{ncols} shape",
                code="index_out_of_range",
            )
        if not policy.allow_nonfinite and not math.isfinite(v):
            raise MatrixMarketError(
                f"non-finite value in entry line: {stripped!r}",
                code="nonfinite_value",
            )
        rows_list.append(r)
        cols_list.append(c)
        vals_list.append(v)
        count += 1
        if len(rows_list) >= chunk_nnz:
            block = COOBlock(
                np.array(rows_list, dtype=INDEX_DTYPE),
                np.array(cols_list, dtype=INDEX_DTYPE),
                np.array(vals_list, dtype=VALUE_DTYPE),
            )
            if reject:
                kept_rows.append(block.rows)
                kept_cols.append(block.cols)
            yield block
            rows_list, cols_list, vals_list = [], [], []
    if count != nnz:
        raise MatrixMarketError(
            f"declared {nnz} entries, found {count}", code="count_mismatch"
        )
    tail = COOBlock(
        np.array(rows_list, dtype=INDEX_DTYPE),
        np.array(cols_list, dtype=INDEX_DTYPE),
        np.array(vals_list, dtype=VALUE_DTYPE),
    )
    if reject:
        kept_rows.append(tail.rows)
        kept_cols.append(tail.cols)
        _check_duplicates(
            _concat(kept_rows, INDEX_DTYPE), _concat(kept_cols, INDEX_DTYPE)
        )
    if tail.rows.size:
        yield tail


def _check_duplicates(rows: np.ndarray, cols: np.ndarray) -> None:
    if not rows.size:
        return
    order = np.lexsort((cols, rows))
    sr, sc = rows[order], cols[order]
    dup = (sr[1:] == sr[:-1]) & (sc[1:] == sc[:-1])
    if dup.any():
        i = int(np.argmax(dup))
        raise MatrixMarketError(
            f"duplicate coordinate ({int(sr[i]) + 1}, {int(sc[i]) + 1})",
            code="duplicate_entry",
        )


def _write(matrix: COOMatrix, fh: TextIO, comment: str) -> None:
    coo = matrix.to_coo()
    fh.write(f"{_HEADER_PREFIX} matrix coordinate real general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    fh.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
    for r, c, v in zip(coo.rows, coo.cols, coo.vals):
        fh.write(f"{int(r) + 1} {int(c) + 1} {float(v)!r}\n")
