"""Sparse matrix storage formats and SpMV kernels.

This subpackage re-implements, from scratch, the storage formats the paper
benchmarks through CUSP: COO, CSR, ELL, HYB, plus CSC and DIA, which back
some of the Table-1 features (``dia_size`` etc.).  Every format supports:

- construction from a canonical COO triple set,
- conversion back to COO (lossless),
- a NumPy-vectorised SpMV kernel (``spmv``),
- a storage footprint estimate (``memory_bytes``).

The module-level helpers :func:`repro.formats.convert.convert` and
:func:`repro.formats.spmv.spmv` dispatch on the format name.
"""

from repro.formats.base import FormatError, SparseMatrix
from repro.formats.convert import FORMATS, convert
from repro.formats.coo import COOMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix, EllSizeError
from repro.formats.hyb import HYBMatrix
from repro.formats.io import (
    COOBlock,
    MatrixMarketError,
    MatrixMarketHeader,
    ReadPolicy,
    assemble_matrix,
    read_matrix_market,
    read_matrix_market_streaming,
    write_matrix_market,
)
from repro.formats.sell import SELLMatrix
from repro.formats.spmv import spmv

__all__ = [
    "COOBlock",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "EllSizeError",
    "FORMATS",
    "FormatError",
    "HYBMatrix",
    "MatrixMarketError",
    "MatrixMarketHeader",
    "ReadPolicy",
    "SELLMatrix",
    "SparseMatrix",
    "assemble_matrix",
    "convert",
    "read_matrix_market",
    "read_matrix_market_streaming",
    "spmv",
    "write_matrix_market",
]
