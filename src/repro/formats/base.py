"""Abstract base class shared by all sparse storage formats."""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

INDEX_DTYPE = np.int64
VALUE_DTYPE = np.float64

#: Bytes per stored index / value, used by the storage-footprint estimates
#: that feed the GPU performance model.
INDEX_BYTES = 4  # CUSP uses 32-bit indices on the GPU
VALUE_BYTES = 8  # double precision, as in the paper's CUSP benchmarks


class FormatError(ValueError):
    """Raised when a matrix cannot be represented in the requested format."""


def check_shape(shape: tuple[int, int]) -> tuple[int, int]:
    """Validate and normalise a matrix shape tuple."""
    if len(shape) != 2:
        raise FormatError(f"shape must be 2-D, got {shape!r}")
    nrows, ncols = int(shape[0]), int(shape[1])
    if nrows <= 0 or ncols <= 0:
        raise FormatError(f"shape must be positive, got {shape!r}")
    return nrows, ncols


def check_vector(x: np.ndarray, ncols: int) -> np.ndarray:
    """Validate the dense input vector of an SpMV call."""
    x = np.asarray(x, dtype=VALUE_DTYPE)
    if x.ndim != 1 or x.shape[0] != ncols:
        raise FormatError(
            f"SpMV input vector must have shape ({ncols},), got {x.shape}"
        )
    return x


class SparseMatrix(abc.ABC):
    """A sparse matrix stored in one specific format.

    Subclasses are immutable containers: all arrays are normalised at
    construction time and never mutated afterwards, so instances can be
    shared freely between the benchmark harness and the feature extractor.
    """

    #: Short lowercase name used in dispatch tables and result rows.
    format_name: ClassVar[str] = ""

    shape: tuple[int, int]

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored (structurally nonzero) entries."""

    @abc.abstractmethod
    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Compute ``y = A @ x`` using this format's kernel."""

    @abc.abstractmethod
    def to_coo(self) -> "COOMatrix":  # noqa: F821 - circular at type time
        """Convert losslessly to canonical COO."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Storage footprint in bytes (GPU-resident arrays only)."""

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense 2-D array (testing / small matrices only)."""
        return self.to_coo().to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} shape={self.shape} nnz={self.nnz} "
            f"bytes={self.memory_bytes()}>"
        )
