"""Hybrid (HYB) format: ELL for the regular part, COO for the overflow.

The paper (§2.1): *"The hybrid (HYB) format alleviates this problem by using
ELL for storing most of the matrix A and COO to store additional entries in
rows with many nonzeros. This reduces the required amount of padding while
maintaining some advantages of ELL."*

The ELL width is chosen with CUSP's heuristic: the smallest width ``k`` such
that the number of rows longer than ``k`` is small enough that handing their
overflow to the (slower, ``relative_speed``×) COO kernel is profitable.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseMatrix,
    check_shape,
    check_vector,
)
from repro.formats.coo import COOMatrix
from repro.formats.ell import PAD, ELLMatrix

#: CUSP's assumed speed ratio of the ELL kernel over the COO kernel.
RELATIVE_SPEED = 3.0

#: Below this many overflow rows, COO handling is always acceptable.  CUSP
#: uses 4096 for GPU-scale matrices; we keep it as a parameter because the
#: synthetic collection also contains small matrices.
BREAKEVEN_THRESHOLD = 4096


def optimal_ell_width(
    row_lengths: np.ndarray,
    relative_speed: float = RELATIVE_SPEED,
    breakeven_threshold: int | None = None,
) -> int:
    """CUSP's ``compute_optimal_entries_per_row`` heuristic.

    Returns the smallest width ``k`` such that the number of rows with more
    than ``k`` entries is either below ``breakeven_threshold`` or small
    enough that ``relative_speed`` × fewer rows are handled by COO than by
    ELL.  ``breakeven_threshold=None`` scales CUSP's constant with the
    matrix size (``min(4096, nrows // 16)``) so the heuristic stays
    meaningful for laptop-scale matrices.
    """
    row_lengths = np.asarray(row_lengths)
    nrows = int(row_lengths.shape[0])
    if nrows == 0:
        return 0
    if breakeven_threshold is None:
        breakeven_threshold = min(BREAKEVEN_THRESHOLD, max(nrows // 16, 0))
    max_len = int(row_lengths.max(initial=0))
    # exceeding[k] = number of rows with length > k, for k = 0..max_len.
    hist = np.bincount(row_lengths, minlength=max_len + 1)
    exceeding = nrows - np.cumsum(hist)
    for k in range(max_len + 1):
        if (
            relative_speed * exceeding[k] < nrows
            or exceeding[k] <= breakeven_threshold
        ):
            return k
    return max_len


class HYBMatrix(SparseMatrix):
    """HYB container wrapping an :class:`ELLMatrix` and a :class:`COOMatrix`.

    The two parts partition the stored entries: the first ``width`` entries
    of each row live in the ELL part, any overflow in the COO part.
    """

    format_name = "hyb"

    def __init__(self, ell: ELLMatrix, coo: COOMatrix) -> None:
        if ell.shape != coo.shape:
            raise FormatError(
                f"HYB part shapes differ: ELL {ell.shape} vs COO {coo.shape}"
            )
        self.shape = check_shape(ell.shape)
        self.ell = ell
        self.coo = coo

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        width: int | None = None,
        relative_speed: float = RELATIVE_SPEED,
        breakeven_threshold: int | None = None,
    ) -> "HYBMatrix":
        lengths = coo.row_lengths()
        if width is None:
            width = optimal_ell_width(
                lengths, relative_speed, breakeven_threshold
            )
        nrows = coo.nrows
        indices = np.full((nrows, width), PAD, dtype=INDEX_DTYPE)
        values = np.zeros((nrows, width), dtype=VALUE_DTYPE)
        if coo.nnz:
            starts = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
            np.cumsum(lengths, out=starts[1:])
            slot = np.arange(coo.nnz, dtype=INDEX_DTYPE) - starts[coo.rows]
            in_ell = slot < width
            if width:
                r, s = coo.rows[in_ell], slot[in_ell]
                indices[r, s] = coo.cols[in_ell]
                values[r, s] = coo.vals[in_ell]
            overflow = ~in_ell
            coo_part = COOMatrix(
                coo.shape,
                coo.rows[overflow],
                coo.cols[overflow],
                coo.vals[overflow],
            )
        else:
            coo_part = COOMatrix.empty(coo.shape)
        # ELL part is built directly (no fill bound: HYB exists precisely to
        # cap the padding).
        ell_part = ELLMatrix(coo.shape, indices, values)
        return cls(ell_part, coo_part)

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.coo.nnz

    @property
    def ell_nnz(self) -> int:
        """True nonzeros stored in the ELL part (feature ``hyb_ell_frac``)."""
        return self.ell.nnz

    @property
    def coo_nnz(self) -> int:
        """Entries stored in the COO overflow part (feature ``hyb_coo``)."""
        return self.coo.nnz

    @property
    def ell_size(self) -> int:
        """Padded slot count of the ELL part (feature ``hyb_ell_size``)."""
        return self.ell.padded_size

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = check_vector(x, self.ncols)
        return self.ell.spmv(x) + self.coo.spmv(x)

    def to_coo(self) -> COOMatrix:
        a, b = self.ell.to_coo(), self.coo
        return COOMatrix(
            self.shape,
            np.concatenate([a.rows, b.rows]),
            np.concatenate([a.cols, b.cols]),
            np.concatenate([a.vals, b.vals]),
        )

    def memory_bytes(self) -> int:
        return self.ell.memory_bytes() + self.coo.memory_bytes()
