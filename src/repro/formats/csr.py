"""Compressed Sparse Row (CSR): the paper's baseline format.

The paper (§2.1): *"The compressed sparse row (CSR) format, which is the
most popular format, compresses the row array to store the start positions
of all rows in the corresponding column and value arrays."*
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    VALUE_BYTES,
    VALUE_DTYPE,
    FormatError,
    SparseMatrix,
    check_shape,
    check_vector,
)
from repro.formats.coo import COOMatrix


class CSRMatrix(SparseMatrix):
    """CSR container: ``indptr`` (nrows+1), ``indices`` and ``data`` (nnz)."""

    format_name = "csr"

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = check_shape(shape)
        self.indptr = np.asarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.asarray(indices, dtype=INDEX_DTYPE)
        self.data = np.asarray(data, dtype=VALUE_DTYPE)
        _validate_csr(self.shape, self.indptr, self.indices, self.data)

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        lengths = coo.row_lengths()
        indptr = np.zeros(coo.nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=indptr[1:])
        # Canonical COO is already row-major sorted, so indices/data can be
        # taken verbatim.
        return cls(coo.shape, indptr, coo.cols, coo.vals)

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """CSR SpMV via expansion to row ids + bincount reduction.

        The GPU CSR-scalar kernel assigns one thread per row; in NumPy the
        equivalent O(nnz) formulation expands the compressed row pointer back
        to per-entry row ids and reduces with ``bincount``.
        """
        x = check_vector(x, self.ncols)
        if self.nnz == 0:
            return np.zeros(self.nrows, dtype=VALUE_DTYPE)
        row_ids = np.repeat(
            np.arange(self.nrows, dtype=INDEX_DTYPE), self.row_lengths()
        )
        products = self.data * x[self.indices]
        return np.bincount(
            row_ids, weights=products, minlength=self.nrows
        ).astype(VALUE_DTYPE, copy=False)

    def to_coo(self) -> COOMatrix:
        row_ids = np.repeat(
            np.arange(self.nrows, dtype=INDEX_DTYPE), self.row_lengths()
        )
        return COOMatrix(self.shape, row_ids, self.indices, self.data)

    def memory_bytes(self) -> int:
        return (self.nrows + 1 + self.nnz) * INDEX_BYTES + self.nnz * VALUE_BYTES

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Column indices and values of row ``i`` (views, do not mutate)."""
        if not 0 <= i < self.nrows:
            raise FormatError(f"row index {i} out of range for {self.nrows} rows")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]


def _validate_csr(
    shape: tuple[int, int],
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> None:
    nrows, ncols = shape
    if indptr.ndim != 1 or indptr.shape[0] != nrows + 1:
        raise FormatError(f"indptr must have length {nrows + 1}")
    if indptr[0] != 0:
        raise FormatError("indptr must start at 0")
    if np.any(np.diff(indptr) < 0):
        raise FormatError("indptr must be non-decreasing")
    if indices.shape != data.shape or indices.ndim != 1:
        raise FormatError("indices and data must be 1-D arrays of equal length")
    if indptr[-1] != indices.shape[0]:
        raise FormatError("indptr[-1] must equal nnz")
    if indices.size and (indices.min() < 0 or indices.max() >= ncols):
        raise FormatError("CSR column index out of range")
