"""Uniform SpMV entry point: ``y = A @ x`` for any format, plus a reference
dense implementation used by the test-suite oracles."""

from __future__ import annotations

import numpy as np

from repro.formats.base import SparseMatrix, check_vector


def spmv(matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
    """Dispatch ``y = A @ x`` to the matrix's own format kernel."""
    return matrix.spmv(x)


def spmv_dense_reference(matrix: SparseMatrix, x: np.ndarray) -> np.ndarray:
    """Oracle: densify and use ``np.dot``.  Only for small test matrices."""
    x = check_vector(x, matrix.ncols)
    return matrix.to_dense() @ x
