"""Compressed Sparse Column (CSC).

Not benchmarked by the paper, but part of the substrate: the MatrixMarket
reader uses it to transpose efficiently, and it rounds out the conversion
registry so downstream users get a complete format library.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import (
    INDEX_BYTES,
    INDEX_DTYPE,
    VALUE_BYTES,
    VALUE_DTYPE,
    FormatError,
    SparseMatrix,
    check_shape,
    check_vector,
)
from repro.formats.coo import COOMatrix


class CSCMatrix(SparseMatrix):
    """CSC container: ``indptr`` (ncols+1), ``indices`` and ``data`` (nnz)."""

    format_name = "csc"

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        self.shape = check_shape(shape)
        self.indptr = np.asarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.asarray(indices, dtype=INDEX_DTYPE)
        self.data = np.asarray(data, dtype=VALUE_DTYPE)
        nrows, ncols = self.shape
        if self.indptr.ndim != 1 or self.indptr.shape[0] != ncols + 1:
            raise FormatError(f"indptr must have length {ncols + 1}")
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing and start at 0")
        if self.indices.shape != self.data.shape or self.indices.ndim != 1:
            raise FormatError("indices and data must be 1-D of equal length")
        if self.indptr[-1] != self.indices.shape[0]:
            raise FormatError("indptr[-1] must equal nnz")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= nrows
        ):
            raise FormatError("CSC row index out of range")

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        # Sort triples column-major, then compress the column array.
        order = np.lexsort((coo.rows, coo.cols))
        rows = coo.rows[order]
        cols = coo.cols[order]
        vals = coo.vals[order]
        lengths = np.bincount(cols, minlength=coo.ncols)
        indptr = np.zeros(coo.ncols + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=indptr[1:])
        return cls(coo.shape, indptr, rows, vals)

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def col_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """CSC SpMV: scale each column by ``x[j]`` and scatter-add by row."""
        x = check_vector(x, self.ncols)
        if self.nnz == 0:
            return np.zeros(self.nrows, dtype=VALUE_DTYPE)
        col_ids = np.repeat(
            np.arange(self.ncols, dtype=INDEX_DTYPE), self.col_lengths()
        )
        products = self.data * x[col_ids]
        return np.bincount(
            self.indices, weights=products, minlength=self.nrows
        ).astype(VALUE_DTYPE, copy=False)

    def to_coo(self) -> COOMatrix:
        col_ids = np.repeat(
            np.arange(self.ncols, dtype=INDEX_DTYPE), self.col_lengths()
        )
        return COOMatrix(self.shape, self.indices, col_ids, self.data)

    def memory_bytes(self) -> int:
        return (self.ncols + 1 + self.nnz) * INDEX_BYTES + self.nnz * VALUE_BYTES
