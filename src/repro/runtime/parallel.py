"""Chunked process-pool execution for the benchmarking campaign.

The campaign's hot fan-outs — matrix generation, permutation application,
the ``compute_stats`` pass, and simulated benchmarking — are all maps of a
pure, seed-carrying function over an item list, so they parallelise with a
plain process pool.  :func:`parallel_map` is the one primitive they share:

- ``jobs <= 1`` is a zero-overhead inline path (a list comprehension; no
  executor, no telemetry setup), so the serial campaign pays nothing.
- ``jobs > 1`` splits the items into contiguous chunks, runs them on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, and reassembles the
  results **in item order**, so output is independent of completion order.

Determinism contract: the caller must make each item carry its own
randomness (a spawned :class:`numpy.random.SeedSequence`, or a name-keyed
noise stream) so that ``fn(item)`` is a pure function.  Under that
contract results are bit-identical for every worker count.

When telemetry is enabled, each chunk additionally runs under a child
telemetry in its worker (see :mod:`repro.obs.context`): the worker's
span subtree and metric deltas ride back alongside the chunk result and
are stitched into the parent trace/registry as results are collected.
Stitching never touches result values, so the determinism contract is
unchanged — output bytes are identical with telemetry on or off.

Worker functions must be picklable: module-level functions, optionally
wrapped in :func:`functools.partial` with picklable arguments.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import TELEMETRY

T = TypeVar("T")
R = TypeVar("R")

#: Chunks submitted per worker: >1 smooths load imbalance between chunks
#: (matrix sizes vary by 10x within a collection) without drowning the
#: pool in per-item pickling round-trips.
CHUNKS_PER_WORKER = 4


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None`` → 1, ``0``/negative → all cores."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


def chunk_slices(
    n_items: int, jobs: int, chunk: int | None = None
) -> list[slice]:
    """Contiguous slices covering ``range(n_items)`` in order.

    With ``chunk=None`` the size targets :data:`CHUNKS_PER_WORKER` chunks
    per worker.  Slices are returned in item order; reassembling chunk
    results into the slice positions restores the exact serial ordering.
    """
    if n_items <= 0:
        return []
    if chunk is None:
        chunk = max(1, -(-n_items // (jobs * CHUNKS_PER_WORKER)))
    chunk = max(1, int(chunk))
    return [slice(lo, min(lo + chunk, n_items)) for lo in range(0, n_items, chunk)]


def _run_chunk(fn: Callable[[T], R], items: Sequence[T]) -> tuple[float, list[R]]:
    """Worker-side chunk body: apply ``fn`` serially, report wall time."""
    start = time.perf_counter()
    out = [fn(item) for item in items]
    return time.perf_counter() - start, out


def _apply_all(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


def _run_chunk_traced(
    ctx,
    label: str,
    index: int,
    fn: Callable[[T], R],
    items: Sequence[T],
) -> tuple[float, list[R], dict | None]:
    """Worker-side chunk body under a child telemetry.

    Same result contract as :func:`_run_chunk` plus the exported span/
    metric payload for parent-side stitching.  The chunk computation is
    byte-for-byte the one :func:`_run_chunk` performs — telemetry rides
    alongside the results, never inside them.
    """
    from repro.obs.context import worker_capture

    start = time.perf_counter()
    out, payload = worker_capture(
        ctx,
        "runtime.worker_chunk",
        _apply_all,
        fn,
        items,
        span_attrs={"label": label, "chunk": index, "n_items": len(items)},
    )
    return time.perf_counter() - start, out, payload


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = 1,
    chunk: int | None = None,
    label: str = "map",
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order, optionally in parallel.

    Parameters
    ----------
    fn
        Picklable single-item function (module-level, or a
        ``functools.partial`` of one).
    items
        Input items; consumed eagerly.
    jobs
        Worker processes.  ``None``/``1`` runs inline in this process with
        no executor or telemetry overhead; ``0`` or negative means one per
        CPU core.
    chunk
        Items per submitted chunk (default: enough for
        :data:`CHUNKS_PER_WORKER` chunks per worker).
    label
        Span/telemetry label for the parallel path
        (``runtime.parallel_map`` span with ``label=...``).
    """
    items = items if isinstance(items, list) else list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    slices = chunk_slices(len(items), jobs, chunk)
    results: list[R | None] = [None] * len(items)
    observing = TELEMETRY.enabled
    ctx = None
    if observing:
        from repro.obs.context import TraceContext, current_context, new_trace_id

        active = current_context()
        ctx = active if active is not None else TraceContext(new_trace_id())
    with TELEMETRY.span(
        "runtime.parallel_map",
        label=label,
        jobs=jobs,
        n_items=len(items),
        n_chunks=len(slices),
        **({"trace": ctx.trace_id} if ctx is not None else {}),
    ):
        with ProcessPoolExecutor(max_workers=min(jobs, len(slices))) as pool:
            if ctx is not None:
                futures = {
                    pool.submit(
                        _run_chunk_traced, ctx, label, i, fn, items[sl]
                    ): sl
                    for i, sl in enumerate(slices)
                }
            else:
                futures = {
                    pool.submit(_run_chunk, fn, items[sl]): sl
                    for sl in slices
                }
            for fut, sl in futures.items():
                if ctx is not None:
                    duration, out, payload = fut.result()
                    _stitch_payload(payload)
                else:
                    duration, out = fut.result()  # re-raises worker errors
                results[sl] = out
                if observing:
                    TELEMETRY.inc("runtime.chunks")
                    TELEMETRY.inc("runtime.items", len(out))
                    TELEMETRY.observe(
                        "runtime.chunk_seconds", duration
                    )
    return results  # type: ignore[return-value]


def _stitch_payload(payload: dict | None) -> None:
    """Merge one worker telemetry payload into the parent (parent side)."""
    if payload:
        from repro.obs.context import stitch

        stitch(payload)
