"""Campaign execution runtime: parallelism, caching, and survivability.

Four pieces make repeated campaigns cheap and interrupted or faulty
campaigns survivable:

- :mod:`repro.runtime.parallel` — :func:`parallel_map`, the chunked
  process-pool map behind every ``--jobs N`` fan-out (generation, stats,
  benchmarking), with a zero-overhead inline path for ``jobs<=1``.
- :mod:`repro.runtime.cache` — :class:`ArtifactCache`, a persistent
  content-addressed store of campaign outputs keyed on configuration +
  code fingerprint, behind ``--cache-dir``.
- :mod:`repro.runtime.faults` — deterministic, name-keyed fault
  injection (failures, latency, corruption, mid-campaign aborts) for
  chaos testing the engine, behind ``repro chaos`` / ``$REPRO_FAULTS``.
- :mod:`repro.runtime.resilience` — :func:`resilient_map`, the
  fault-absorbing map: bounded retry with exponential backoff, per-task
  timeouts, and a quarantine for tasks that fail every attempt.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    FINGERPRINT_MODULES,
    ArtifactCache,
    artifact_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.runtime.faults import (
    FAULTS_ENV,
    CampaignAbort,
    Corrupted,
    FaultInjector,
    FaultSpec,
    FaultyFunction,
    InjectedFault,
    injector_for,
    parse_fault_spec,
    reset_abort_counter,
    spec_from_env,
)
from repro.runtime.parallel import chunk_slices, parallel_map, resolve_jobs
from repro.runtime.resilience import (
    Quarantine,
    QuarantineEntry,
    ResilientMapResult,
    RetryPolicy,
    TaskFailure,
    TaskTimeoutError,
    resilient_map,
)

__all__ = [
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "CampaignAbort",
    "Corrupted",
    "FAULTS_ENV",
    "FINGERPRINT_MODULES",
    "FaultInjector",
    "FaultSpec",
    "FaultyFunction",
    "InjectedFault",
    "Quarantine",
    "QuarantineEntry",
    "ResilientMapResult",
    "RetryPolicy",
    "TaskFailure",
    "TaskTimeoutError",
    "artifact_key",
    "chunk_slices",
    "code_fingerprint",
    "default_cache_dir",
    "injector_for",
    "parallel_map",
    "parse_fault_spec",
    "reset_abort_counter",
    "resilient_map",
    "resolve_jobs",
    "spec_from_env",
]
