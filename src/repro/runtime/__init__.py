"""Campaign execution runtime: process-pool parallelism + artifact cache.

Two pieces make repeated campaigns cheap:

- :mod:`repro.runtime.parallel` — :func:`parallel_map`, the chunked
  process-pool map behind every ``--jobs N`` fan-out (generation, stats,
  benchmarking), with a zero-overhead inline path for ``jobs<=1``.
- :mod:`repro.runtime.cache` — :class:`ArtifactCache`, a persistent
  content-addressed store of campaign outputs keyed on configuration +
  code fingerprint, behind ``--cache-dir``.
"""

from repro.runtime.cache import (
    CACHE_DIR_ENV,
    FINGERPRINT_MODULES,
    ArtifactCache,
    artifact_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.runtime.parallel import chunk_slices, parallel_map, resolve_jobs

__all__ = [
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "FINGERPRINT_MODULES",
    "artifact_key",
    "chunk_slices",
    "code_fingerprint",
    "default_cache_dir",
    "parallel_map",
    "resolve_jobs",
]
