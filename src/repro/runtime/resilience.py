"""Absorbing task faults: bounded retry, backoff, timeouts, quarantine.

:func:`resilient_map` is the fault-tolerant sibling of
:func:`repro.runtime.parallel.parallel_map`.  Where ``parallel_map``
re-raises the first worker error (correct for a trusted, deterministic
campaign), ``resilient_map`` assumes tasks *will* fail — whether through
injected chaos (:mod:`repro.runtime.faults`) or real-world OOMs and
timeouts — and degrades gracefully instead:

- every task attempt runs under a guard that converts exceptions into
  failure records (a poisoned task cannot take the pool down),
- failed tasks are retried in batches with exponential backoff, rerolling
  their fate each attempt,
- tasks that fail every attempt land in a :class:`Quarantine` with their
  failure history, and the map *completes* with ``None`` at their
  positions,
- an optional per-task timeout (SIGALRM-based, main-thread only) converts
  hangs into retryable failures,
- an optional validator rejects corrupt results (e.g. non-finite
  benchmark times), which are then retried like failures.

Determinism: retry scheduling never influences task *values* — tasks are
pure functions of their items (the PR 2 contract), so a task that
succeeds on attempt 3 returns exactly what it would have returned on
attempt 1.  Backoff sleeps cost wall time only.

Telemetry (enabled mode): ``resilience.tasks`` / ``.retries`` /
``.failures.<kind>`` counters, a ``resilience.quarantined`` gauge, and a
``resilience.backoff_seconds`` histogram over the injected delays.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.obs import TELEMETRY
from repro.obs.metrics import BACKOFF_BUCKETS
from repro.runtime.faults import Corrupted, InjectedFault
from repro.runtime.parallel import parallel_map

T = TypeVar("T")
R = TypeVar("R")


class TaskTimeoutError(RuntimeError):
    """A task exceeded its per-attempt wall-clock budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus at most two retries.  The backoff before retry round *r*
    (1-based) is ``min(backoff_base * backoff_factor**(r-1),
    backoff_max)`` seconds, slept once per round — not per task — so a
    large failed batch costs one delay, not thousands.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: Per-attempt wall-clock budget (seconds); ``None`` disables.  Uses
    #: SIGALRM, so it only arms on the main thread of a process (which is
    #: where both the inline path and pool workers execute tasks).
    task_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")

    def backoff(self, retry_round: int) -> float:
        """Delay before retry round ``retry_round`` (0-based)."""
        return min(
            self.backoff_base * self.backoff_factor**retry_round,
            self.backoff_max,
        )


@dataclass
class TaskFailure:
    """Terminal failure record for one quarantined task."""

    key: str
    kind: str  # "injected" | "error" | "timeout" | "corrupt" | "invalid"
    attempts: int
    message: str


@dataclass
class QuarantineEntry:
    key: str
    stage: str
    kind: str
    attempts: int
    reason: str


class Quarantine:
    """Poison list: tasks that failed every retry, with their history."""

    def __init__(self) -> None:
        self.entries: list[QuarantineEntry] = []

    def add(self, key: str, stage: str, failure: TaskFailure) -> None:
        self.entries.append(
            QuarantineEntry(
                key=key,
                stage=stage,
                kind=failure.kind,
                attempts=failure.attempts,
                reason=failure.message,
            )
        )
        TELEMETRY.inc("resilience.quarantined_total")
        TELEMETRY.gauge_set("resilience.quarantined", len(self.names))

    @property
    def names(self) -> list[str]:
        """Unique quarantined keys, first-seen order."""
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.key, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.names)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def report_lines(self) -> list[str]:
        if not self.entries:
            return ["quarantine: empty"]
        lines = [f"quarantine: {len(self)} task(s)"]
        for entry in self.entries:
            lines.append(
                f"  {entry.key}  [{entry.stage}/{entry.kind}, "
                f"{entry.attempts} attempt(s)]  {entry.reason}"
            )
        return lines

    def report(self) -> str:
        return "\n".join(self.report_lines())


class _TaskError:
    """In-band failure marker returned by the per-task guard."""

    __slots__ = ("kind", "message")

    def __init__(self, kind: str, message: str) -> None:
        self.kind = kind
        self.message = message

    def __repr__(self) -> str:
        return f"_TaskError({self.kind!r}, {self.message!r})"


def _raise_timeout(signum: int, frame: Any) -> None:
    raise TaskTimeoutError("task exceeded its wall-clock budget")


def _alarm_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


class _Guarded:
    """Picklable per-task guard: absorb exceptions, enforce the timeout.

    Runs in pool workers (or inline); converts any ``Exception`` into a
    :class:`_TaskError` so one bad task never aborts the whole map.
    ``BaseException`` (notably :class:`~repro.runtime.faults.CampaignAbort`)
    still propagates — a simulated crash must crash.
    """

    __slots__ = ("fn", "timeout")

    def __init__(self, fn: Callable[[T], R], timeout: float | None) -> None:
        self.fn = fn
        self.timeout = timeout

    def __getstate__(self) -> tuple[Any, Any]:
        return (self.fn, self.timeout)

    def __setstate__(self, state: tuple[Any, Any]) -> None:
        self.fn, self.timeout = state

    def _call_with_timeout(self, item: T) -> R:
        old_handler = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, self.timeout)
        try:
            return self.fn(item)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)

    def __call__(self, item: T) -> Any:
        try:
            if self.timeout is not None and _alarm_usable():
                return self._call_with_timeout(item)
            return self.fn(item)
        except TaskTimeoutError as exc:
            return _TaskError("timeout", str(exc))
        except InjectedFault as exc:
            return _TaskError("injected", str(exc))
        except Exception as exc:
            return _TaskError("error", f"{type(exc).__name__}: {exc}")


def _classify(
    out: Any, validate: Callable[[Any], str | None] | None
) -> tuple[str, str] | None:
    """(kind, message) when ``out`` is a failure, ``None`` when it is OK."""
    if isinstance(out, _TaskError):
        return out.kind, out.message
    if isinstance(out, Corrupted):
        return "corrupt", f"corrupted result for {out.key!r}"
    if validate is not None:
        message = validate(out)
        if message is not None:
            return "invalid", message
    return None


@dataclass
class ResilientMapResult:
    """Outcome of one :func:`resilient_map`: values plus failure records."""

    values: list[Any]
    ok: list[bool]
    #: item index → terminal failure (tasks that exhausted every attempt).
    failures: dict[int, TaskFailure] = field(default_factory=dict)
    #: Total retried task-attempts across all rounds.
    retried: int = 0

    @property
    def n_failed(self) -> int:
        return len(self.failures)

    @property
    def complete(self) -> bool:
        return not self.failures


def resilient_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    keys: Sequence[str] | None = None,
    jobs: int | None = 1,
    policy: RetryPolicy | None = None,
    validate: Callable[[Any], str | None] | None = None,
    label: str = "map",
    sleep: Callable[[float], None] = time.sleep,
) -> ResilientMapResult:
    """Map ``fn`` over ``items`` with retry, backoff, and quarantine.

    Parameters
    ----------
    fn
        Picklable task function.  If it exposes ``for_attempt(n)`` (a
        :class:`~repro.runtime.faults.FaultyFunction` does), each retry
        round calls the rebound wrapper so injected fates reroll.
    items
        Task inputs; consumed eagerly.
    keys
        Stable task names aligned with ``items`` (used in failure
        records); defaults to stringified indices.
    jobs
        Worker processes per round (same semantics as ``parallel_map``).
    policy
        Retry/backoff/timeout policy (default: :class:`RetryPolicy`).
    validate
        Optional result validator returning an error string for results
        that must be treated as failures (``None`` = valid).
    label
        Telemetry label.
    sleep
        Backoff sleeper (monkeypatch point: tests inject a fake clock so
        retry schedules are asserted without spending wall time).
    """
    items = items if isinstance(items, list) else list(items)
    n = len(items)
    keys = [str(i) for i in range(n)] if keys is None else list(keys)
    if len(keys) != n:
        raise ValueError(f"{len(keys)} keys for {n} items")
    policy = policy or RetryPolicy()

    values: list[Any] = [None] * n
    ok = [False] * n
    last_failure: dict[int, tuple[str, str, int]] = {}
    retried = 0
    pending = list(range(n))
    observing = TELEMETRY.enabled

    from repro.obs.context import request_scope

    # One trace context covers every retry round: worker subtrees from
    # attempt 0 and attempt N stitch under the same resilience.map root.
    with request_scope(
        "resilience.map", label=label, n_items=n,
        max_attempts=policy.max_attempts,
    ):
        for attempt in range(policy.max_attempts):
            if not pending:
                break
            if attempt > 0:
                delay = policy.backoff(attempt - 1)
                if observing:
                    TELEMETRY.inc("resilience.retries", len(pending))
                    TELEMETRY.observe(
                        "resilience.backoff_seconds",
                        delay,
                        buckets=BACKOFF_BUCKETS,
                    )
                retried += len(pending)
                if delay > 0:
                    sleep(delay)
            round_fn = (
                fn.for_attempt(attempt)
                if hasattr(fn, "for_attempt")
                else fn
            )
            guarded = _Guarded(round_fn, policy.task_timeout)
            outs = parallel_map(
                guarded,
                [items[i] for i in pending],
                jobs=jobs,
                label=f"{label}.attempt{attempt}",
            )
            still_failed: list[int] = []
            for i, out in zip(pending, outs):
                verdict = _classify(out, validate)
                if verdict is None:
                    values[i] = out
                    ok[i] = True
                    last_failure.pop(i, None)
                else:
                    kind, message = verdict
                    last_failure[i] = (kind, message, attempt + 1)
                    still_failed.append(i)
                    if observing:
                        TELEMETRY.inc(f"resilience.failures.{kind}")
            pending = still_failed
        if observing:
            TELEMETRY.inc("resilience.tasks", n)

    failures = {
        i: TaskFailure(key=keys[i], kind=kind, attempts=attempts, message=msg)
        for i, (kind, msg, attempts) in last_failure.items()
    }
    return ResilientMapResult(
        values=values, ok=ok, failures=failures, retried=retried
    )


__all__ = [
    "Quarantine",
    "QuarantineEntry",
    "ResilientMapResult",
    "RetryPolicy",
    "TaskFailure",
    "TaskTimeoutError",
    "resilient_map",
]
