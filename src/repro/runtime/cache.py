"""Persistent, content-addressed cache for campaign artifacts.

The benchmarking campaign is the dominant cost of every run (the paper's
§5.4 / Table 8 point: two days of GPU time before any model training
starts), yet its outputs are a pure function of the experiment
configuration and the code that produces them.  This module caches those
outputs on disk so a warm ``repro tables`` run skips the campaign
entirely.

**Keying.**  An entry's key is the SHA-256 of

- the campaign-relevant configuration fields (collection size,
  augmentation copies, trials, seed — *not* analysis knobs like fold
  counts, and *not* execution knobs like ``jobs``), and
- a *code fingerprint*: the hash of the source files of every module
  involved in producing the artifacts (generators, stats, features,
  kernel models, simulator, labeling).

Editing any producing module changes the fingerprint, which changes the
key, which orphans the stale entry — invalidation is automatic and
conservative.  ``repro cache clear`` removes entries explicitly.

**Layout.**  ``<root>/<key>/artifact.pkl`` (pickled payload) plus
``<root>/<key>/meta.json`` (human-readable provenance: config fields,
fingerprint, creation time, sizes).  Writes go through a temp file and
``os.replace`` so readers never observe a half-written artifact.

Telemetry: ``runtime.cache.hits`` / ``.misses`` / ``.stores`` /
``.errors`` counters, incremented in the calling process.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pickle
import shutil
import tempfile
import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterator

from repro.obs import TELEMETRY

#: Bump when the artifact payload layout changes incompatibly.
SCHEMA_VERSION = 1

#: Environment variable consulted when no ``--cache-dir`` is given.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Modules whose source participates in the campaign-code fingerprint:
#: everything between "a seed" and "features + benchmark results".
FINGERPRINT_MODULES: tuple[str, ...] = (
    "repro.datasets.generators",
    "repro.datasets.suite",
    "repro.datasets.augment",
    "repro.formats.base",
    "repro.formats.coo",
    "repro.formats.ell",
    "repro.formats.hyb",
    "repro.features.stats",
    "repro.features.extract",
    "repro.features.table",
    "repro.gpu.arch",
    "repro.gpu.kernels",
    "repro.gpu.noise",
    "repro.gpu.simulator",
    "repro.core.labeling",
    "repro.experiments.data",
)

_ARTIFACT_FILE = "artifact.pkl"
_META_FILE = "meta.json"


def default_cache_dir() -> str | None:
    """Cache directory from ``$REPRO_CACHE_DIR``, or ``None`` (disabled).

    The disk cache is strictly opt-in: without an explicit path the
    campaign never touches the filesystem, so tests and one-off runs
    stay hermetic.
    """
    path = os.environ.get(CACHE_DIR_ENV)
    return path or None


@lru_cache(maxsize=8)
def code_fingerprint(modules: tuple[str, ...] = FINGERPRINT_MODULES) -> str:
    """SHA-256 over the source bytes of ``modules`` (import order fixed).

    Memoised per process: sources cannot change under a running
    interpreter without a re-import anyway.
    """
    digest = hashlib.sha256()
    for modname in modules:
        module = importlib.import_module(modname)
        source = getattr(module, "__file__", None)
        digest.update(modname.encode())
        if source and os.path.exists(source):
            with open(source, "rb") as fh:
                digest.update(fh.read())
    return digest.hexdigest()


def artifact_key(config_fields: dict[str, Any], fingerprint: str | None = None) -> str:
    """Content address for one campaign: config fields + code fingerprint."""
    payload = {
        "schema": SCHEMA_VERSION,
        "config": config_fields,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class ArtifactCache:
    """Directory-backed store of pickled campaign artifacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------

    def entry_dir(self, key: str) -> Path:
        return self.root / key

    def _artifact_path(self, key: str) -> Path:
        return self.entry_dir(key) / _ARTIFACT_FILE

    def _meta_path(self, key: str) -> Path:
        return self.entry_dir(key) / _META_FILE

    # -- read/write ----------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self._artifact_path(key).is_file()

    def load(self, key: str) -> Any | None:
        """The stored artifact, or ``None`` on a miss (or corrupt entry)."""
        path = self._artifact_path(key)
        if not path.is_file():
            TELEMETRY.inc("runtime.cache.misses")
            return None
        try:
            with TELEMETRY.span("runtime.cache.load", key=key[:12]):
                with open(path, "rb") as fh:
                    artifact = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # A truncated or stale-code entry is a miss, not a crash: the
            # caller rebuilds and overwrites it.
            TELEMETRY.inc("runtime.cache.errors")
            TELEMETRY.inc("runtime.cache.misses")
            return None
        TELEMETRY.inc("runtime.cache.hits")
        return artifact

    def store(self, key: str, artifact: Any, meta: dict[str, Any] | None = None) -> Path:
        """Atomically persist ``artifact`` (and a ``meta.json`` sidecar)."""
        entry = self.entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        with TELEMETRY.span("runtime.cache.store", key=key[:12]):
            fd, tmp = tempfile.mkstemp(dir=entry, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._artifact_path(key))
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            record = {
                "key": key,
                "schema": SCHEMA_VERSION,
                "created": time.time(),
                "bytes": self._artifact_path(key).stat().st_size,
                **(meta or {}),
            }
            self._meta_path(key).write_text(
                json.dumps(record, indent=2, sort_keys=True, default=repr)
            )
        TELEMETRY.inc("runtime.cache.stores")
        return self._artifact_path(key)

    def remove(self, key: str) -> bool:
        """Delete one entry (used to retire consumed checkpoints)."""
        entry = self.entry_dir(key)
        if not entry.is_dir():
            return False
        shutil.rmtree(entry)
        return True

    # -- management ----------------------------------------------------------

    def entries(self) -> Iterator[dict[str, Any]]:
        """Metadata of every entry (falling back to stat() if meta is gone)."""
        if not self.root.is_dir():
            return
        for entry in sorted(self.root.iterdir()):
            artifact = entry / _ARTIFACT_FILE
            if not artifact.is_file():
                continue
            meta_path = entry / _META_FILE
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, json.JSONDecodeError):
                stat = artifact.stat()
                meta = {
                    "key": entry.name,
                    "created": stat.st_mtime,
                    "bytes": stat.st_size,
                }
            yield meta

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in list(self.root.iterdir()):
            if (entry / _ARTIFACT_FILE).is_file():
                shutil.rmtree(entry)
                removed += 1
        return removed

    def info(self) -> dict[str, Any]:
        """Summary used by ``repro cache info``."""
        entries = list(self.entries())
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(int(e.get("bytes", 0)) for e in entries),
            "keys": [e.get("key", "?") for e in entries],
        }
