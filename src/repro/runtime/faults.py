"""Deterministic, seedable fault injection for the campaign engine.

A production-scale campaign loses work units: matrices OOM, workers die,
cache entries rot (the paper's own benchmarking lost matrices to CUSP
ELL-generation failures, §5.1).  This module *manufactures* those faults
on demand so the resilience machinery in
:mod:`repro.runtime.resilience` can be exercised deterministically —
in tests, in the ``repro chaos`` subcommand, and in the ``chaos-smoke``
CI job.

Design rules:

- **Name-keyed, not call-keyed.**  Every fault decision is a pure
  function of ``(spec.seed, channel, task key, attempt)`` hashed through
  SHA-256, the same determinism seam the campaign already uses for
  benchmark noise.  Whether a task fails never depends on call order,
  worker id, or wall clock, so a faulted run is exactly reproducible —
  and the *surviving* tasks compute exactly what a fault-free run
  computes, because injection happens **around** the task function,
  never inside it.
- **Faults are loud.**  An injected failure raises
  :class:`InjectedFault`; an injected corruption replaces the result
  with a :class:`Corrupted` marker that downstream validation always
  rejects.  No fault silently perturbs a value.
- **Picklable.**  :class:`FaultyFunction` wraps the task callable and
  travels to pool workers with it, so injection works for every
  ``--jobs`` value.

The ``$REPRO_FAULTS`` environment variable (see :func:`parse_fault_spec`
for the syntax) injects faults into any campaign command without code
changes — e.g. ``REPRO_FAULTS="fail=0.2,seed=1" repro train ...``, or
``REPRO_FAULTS="abort=40"`` to simulate a mid-campaign crash and then
exercise ``--resume``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable holding a fault-spec string (see parse_fault_spec).
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """An artificial task failure produced by a :class:`FaultInjector`."""


class CampaignAbort(BaseException):
    """Kill switch simulating a hard mid-campaign crash.

    Inherits :class:`BaseException` so the per-task guard in
    :mod:`repro.runtime.resilience` (which absorbs ``Exception``) never
    converts it into a retry — it unwinds the whole campaign, exactly
    like SIGKILL would, leaving any checkpoint behind for ``--resume``.
    """


class Corrupted:
    """Marker standing in for a detectably-garbage task result.

    Injected corruption must be *detectable* (otherwise it could perturb
    surviving results, violating the determinism contract), so instead
    of mangling the real value the injector substitutes this marker,
    which the resilience layer's validation always rejects.
    """

    __slots__ = ("key", "attempt")

    def __init__(self, key: str, attempt: int) -> None:
        self.key = key
        self.attempt = attempt

    def __repr__(self) -> str:
        return f"Corrupted(key={self.key!r}, attempt={self.attempt})"


@dataclass(frozen=True)
class FaultSpec:
    """Probabilities and knobs of one fault-injection campaign.

    All rates are per *task attempt* and keyed by task name, so the same
    name rolls the same fate in every run with the same ``seed``.
    """

    #: Probability that a task attempt raises :class:`InjectedFault`.
    failure_rate: float = 0.0
    #: Probability that a task attempt is delayed by ``latency_seconds``.
    latency_rate: float = 0.0
    #: Injected delay for latency-afflicted attempts (seconds).
    latency_seconds: float = 0.005
    #: Probability that a task attempt returns a :class:`Corrupted` marker.
    corruption_rate: float = 0.0
    #: Fraction of the failing mass that is *poison*: names whose every
    #: attempt fails, so they exhaust retries and land in quarantine.
    poison_fraction: float = 0.25
    #: Seed of the fault stream (independent of the campaign seed).
    seed: int = 0
    #: After this many wrapped task executions (process-local count),
    #: raise :class:`CampaignAbort` — simulates a mid-campaign kill.
    abort_after: int | None = None

    def __post_init__(self) -> None:
        for name in ("failure_rate", "latency_rate", "corruption_rate",
                     "poison_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        if self.abort_after is not None and self.abort_after < 0:
            raise ValueError("abort_after must be >= 0")

    @property
    def active(self) -> bool:
        """Whether this spec injects anything at all."""
        return (
            self.failure_rate > 0
            or self.latency_rate > 0
            or self.corruption_rate > 0
            or self.abort_after is not None
        )


def roll(seed: int, channel: str, key: str, attempt: int = 0) -> float:
    """Deterministic uniform draw in [0, 1) for one fault decision.

    SHA-256 of the decision coordinates, platform- and process-
    independent: the same (seed, channel, key, attempt) always rolls the
    same number, on any machine, under any worker count.
    """
    digest = hashlib.sha256(
        f"{seed}:{channel}:{key}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a compact ``key=value`` spec string into a :class:`FaultSpec`.

    Recognised keys: ``fail``, ``latency``, ``delay``, ``corrupt``,
    ``poison``, ``seed``, ``abort``.  Example::

        fail=0.2,latency=0.1,delay=0.01,corrupt=0.05,seed=7
    """
    fields = {
        "fail": "failure_rate",
        "latency": "latency_rate",
        "delay": "latency_seconds",
        "corrupt": "corruption_rate",
        "poison": "poison_fraction",
        "seed": "seed",
        "abort": "abort_after",
    }
    kwargs: dict[str, Any] = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"malformed fault spec token {token!r}")
        key, _, value = token.partition("=")
        key = key.strip()
        if key not in fields:
            raise ValueError(
                f"unknown fault spec key {key!r}; known: {sorted(fields)}"
            )
        field_name = fields[key]
        if field_name in ("seed", "abort_after"):
            kwargs[field_name] = int(value)
        else:
            kwargs[field_name] = float(value)
    return FaultSpec(**kwargs)


def spec_from_env() -> FaultSpec | None:
    """The :class:`FaultSpec` from ``$REPRO_FAULTS``, or ``None``."""
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return None
    return parse_fault_spec(text)


#: Process-local count of wrapped task executions, for ``abort_after``.
#: Deliberately simple (a mutable module global): the kill switch is a
#: test/chaos device and is documented to count per process.
_ABORT_STATE = {"calls": 0}


def reset_abort_counter() -> None:
    """Restart the ``abort_after`` execution count (campaign start)."""
    _ABORT_STATE["calls"] = 0


class FaultInjector:
    """Rolls fault decisions for task keys under one :class:`FaultSpec`."""

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    def is_poison(self, key: str) -> bool:
        """Whether ``key`` fails *every* attempt (lands in quarantine)."""
        threshold = self.spec.failure_rate * self.spec.poison_fraction
        return roll(self.spec.seed, "poison", key) < threshold

    def fails(self, key: str, attempt: int) -> bool:
        if self.spec.failure_rate <= 0:
            return False
        if self.is_poison(key):
            return True
        return (
            roll(self.spec.seed, "fail", key, attempt) < self.spec.failure_rate
        )

    def delay_for(self, key: str, attempt: int) -> float:
        if self.spec.latency_rate <= 0:
            return 0.0
        if roll(self.spec.seed, "latency", key, attempt) < self.spec.latency_rate:
            return self.spec.latency_seconds
        return 0.0

    def corrupts(self, key: str, attempt: int) -> bool:
        if self.spec.corruption_rate <= 0:
            return False
        return (
            roll(self.spec.seed, "corrupt", key, attempt)
            < self.spec.corruption_rate
        )

    def wrap(
        self, fn: Callable[[T], R], key_fn: Callable[[T], str]
    ) -> "FaultyFunction":
        """A picklable fault-injecting wrapper around ``fn``."""
        return FaultyFunction(fn, key_fn, self.spec)


class FaultyFunction:
    """Picklable callable injecting faults around one task function.

    The wrapper carries the attempt number so retries reroll their fate:
    transient failures (non-poison names) usually succeed on a later
    attempt, poison names never do.
    """

    __slots__ = ("fn", "key_fn", "spec", "attempt")

    def __init__(
        self,
        fn: Callable[[T], R],
        key_fn: Callable[[T], str],
        spec: FaultSpec,
        attempt: int = 0,
    ) -> None:
        self.fn = fn
        self.key_fn = key_fn
        self.spec = spec
        self.attempt = attempt

    def for_attempt(self, attempt: int) -> "FaultyFunction":
        """The same wrapper rebound to a retry round."""
        return FaultyFunction(self.fn, self.key_fn, self.spec, attempt)

    def __getstate__(self) -> dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def __call__(self, item: T) -> Any:
        spec = self.spec
        if spec.abort_after is not None:
            _ABORT_STATE["calls"] += 1
            if _ABORT_STATE["calls"] > spec.abort_after:
                raise CampaignAbort(
                    f"injected abort after {spec.abort_after} task executions"
                )
        key = self.key_fn(item)
        injector = FaultInjector(spec)
        delay = injector.delay_for(key, self.attempt)
        if delay > 0:
            time.sleep(delay)
        if injector.fails(key, self.attempt):
            raise InjectedFault(
                f"injected failure for {key!r} (attempt {self.attempt})"
            )
        result = self.fn(item)
        if injector.corrupts(key, self.attempt):
            return Corrupted(key, self.attempt)
        return result


def injector_for(spec: FaultSpec | None) -> FaultInjector | None:
    """Convenience: an injector for an (optionally absent) spec."""
    if spec is None or not spec.active:
        return None
    return FaultInjector(spec)


__all__ = [
    "CampaignAbort",
    "Corrupted",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultSpec",
    "FaultyFunction",
    "InjectedFault",
    "injector_for",
    "parse_fault_spec",
    "reset_abort_counter",
    "roll",
    "spec_from_env",
]
