"""Ingestion gateway: every incoming matrix is treated as hostile.

The gateway is the only path by which request payloads become
:class:`~repro.formats.coo.COOMatrix` objects and feature vectors.  It
enforces byte/size/nnz budgets *before* parsing (a forged size line or a
multi-gigabyte payload is rejected up front), runs the hardened
MatrixMarket reader with a strict :class:`~repro.formats.io.ReadPolicy`
(NaN/Inf rejected, duplicate coordinates rejected, comment preambles
bounded), and converts every failure mode into an :class:`IngestError`
carrying a structured code — the server turns those into ``invalid``
responses instead of letting an exception near the serving loop.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

import numpy as np

from repro.features import extract_features
from repro.formats.coo import COOMatrix
from repro.formats.io import MatrixMarketError, ReadPolicy, read_matrix_market
from repro.obs import TELEMETRY
from repro.serving.protocol import (
    CODE_BAD_FEATURES,
    CODE_MISSING_FIELD,
    CODE_PAYLOAD_TOO_LARGE,
)


class IngestError(Exception):
    """A request payload that cannot become a matrix; carries a code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class GatewayLimits:
    """Byte and structure budgets for one ingested matrix."""

    #: Maximum serialized matrix size (inline text or on-disk file).
    max_matrix_bytes: int = 8 * 1024 * 1024
    #: Maximum declared rows/columns.
    max_dim: int = 50_000_000
    #: Maximum declared nonzeros.
    max_nnz: int = 5_000_000
    #: Maximum comment-preamble size inside the file.
    max_header_bytes: int = 64 * 1024

    def read_policy(self) -> ReadPolicy:
        return ReadPolicy(
            max_dim=self.max_dim,
            max_nnz=self.max_nnz,
            max_header_bytes=self.max_header_bytes,
            allow_nonfinite=False,
            duplicates="reject",
        )


class IngestionGateway:
    """Validates and parses request payloads into matrices + features."""

    def __init__(self, limits: GatewayLimits | None = None) -> None:
        self.limits = limits or GatewayLimits()
        self._policy = self.limits.read_policy()

    # -- matrix ingestion ---------------------------------------------------

    def parse_matrix(self, body: dict) -> COOMatrix:
        """The matrix named by ``body`` (inline ``mtx`` or ``path``).

        Raises :class:`IngestError` for every failure mode.
        """
        text = body.get("mtx")
        path = body.get("path")
        if text is None and path is None:
            raise IngestError(
                CODE_MISSING_FIELD,
                "request needs an inline 'mtx' payload or a 'path'",
            )
        try:
            if text is not None:
                if not isinstance(text, str):
                    raise IngestError(
                        CODE_MISSING_FIELD, "'mtx' must be a string"
                    )
                if len(text) > self.limits.max_matrix_bytes:
                    raise IngestError(
                        CODE_PAYLOAD_TOO_LARGE,
                        f"inline matrix of {len(text)} bytes exceeds the "
                        f"{self.limits.max_matrix_bytes}-byte limit",
                    )
                matrix = read_matrix_market(io.StringIO(text), self._policy)
            else:
                matrix = self._read_path(str(path))
        except MatrixMarketError as exc:
            TELEMETRY.inc("serving.gateway.rejected")
            TELEMETRY.inc(f"serving.gateway.rejected.{exc.code}")
            raise IngestError(exc.code, str(exc)) from exc
        except IngestError:
            TELEMETRY.inc("serving.gateway.rejected")
            raise
        return matrix

    def _read_path(self, path: str) -> COOMatrix:
        try:
            size = os.stat(path).st_size
        except OSError as exc:
            raise IngestError(
                CODE_MISSING_FIELD, f"unreadable matrix path {path!r}: {exc}"
            ) from exc
        if size > self.limits.max_matrix_bytes:
            raise IngestError(
                CODE_PAYLOAD_TOO_LARGE,
                f"matrix file of {size} bytes exceeds the "
                f"{self.limits.max_matrix_bytes}-byte limit",
            )
        return read_matrix_market(path, self._policy)

    # -- feature extraction -------------------------------------------------

    def features(self, matrix: COOMatrix) -> np.ndarray:
        """The (1, 21) feature row of an ingested matrix.

        A matrix that defeats feature extraction (overflow to inf, an
        internal error) is rejected like malformed input: the model
        never sees a vector the gateway has not certified finite.
        """
        try:
            vec = extract_features(matrix)[None, :]
        except Exception as exc:
            TELEMETRY.inc("serving.gateway.rejected")
            raise IngestError(
                CODE_BAD_FEATURES, f"feature extraction failed: {exc}"
            ) from exc
        if not np.all(np.isfinite(vec)):
            TELEMETRY.inc("serving.gateway.rejected")
            raise IngestError(
                CODE_BAD_FEATURES, "non-finite feature vector"
            )
        return vec

    def ingest(self, body: dict) -> tuple[COOMatrix, np.ndarray]:
        """Parse + featurise in one guarded step."""
        matrix = self.parse_matrix(body)
        return matrix, self.features(matrix)
