"""Consistent-hash request routing for the multi-worker serving tier.

The tier keeps admission-control and circuit-breaker state *local* to a
worker (DESIGN §14): per-client semantics survive horizontal scaling
only if the same client always lands on the same worker.  A consistent
hash ring delivers that with bounded disruption when the worker set
changes:

- **Stable assignment** — ``assign(key)`` depends only on the current
  member set, never on join order or history, so every front-end
  replica (and every restart) routes identically.
- **Bounded movement** — adding a worker moves only the keys that now
  map to *it*; removing a worker moves only the keys that were *on* it.
  Breaker/admission state for every other client stays untouched.

Hashing is SHA-256 over ``"worker:vnode"`` / the raw key, so placement
is deterministic across processes and Python versions (``hash()`` is
salted per process and must not leak into routing).  Each worker owns
:data:`DEFAULT_REPLICAS` virtual nodes to keep the load split even for
small worker counts.
"""

from __future__ import annotations

import bisect
import hashlib


DEFAULT_REPLICAS = 64


def stable_hash(text: str) -> int:
    """64-bit position on the ring, deterministic across processes."""
    digest = hashlib.sha256(text.encode("utf-8", "surrogatepass")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to worker names."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._points: list[int] = []        # sorted vnode positions
        self._owners: list[str] = []        # owner of each position
        self._workers: set[str] = set()

    # -- membership ---------------------------------------------------------

    def _vnode_points(self, worker: str) -> list[int]:
        return [
            stable_hash(f"{worker}:{i}") for i in range(self.replicas)
        ]

    def add(self, worker: str) -> None:
        """Add ``worker``'s virtual nodes; idempotent."""
        if worker in self._workers:
            return
        self._workers.add(worker)
        for point in self._vnode_points(worker):
            at = bisect.bisect_left(self._points, point)
            # Ties between different workers are broken by owner name so
            # the ring's content is set-determined, not order-determined.
            while (
                at < len(self._points)
                and self._points[at] == point
                and self._owners[at] < worker
            ):
                at += 1
            self._points.insert(at, point)
            self._owners.insert(at, worker)

    def remove(self, worker: str) -> None:
        """Drop ``worker``'s virtual nodes; idempotent."""
        if worker not in self._workers:
            return
        self._workers.discard(worker)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != worker
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    @property
    def workers(self) -> tuple[str, ...]:
        return tuple(sorted(self._workers))

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    # -- assignment ---------------------------------------------------------

    def assign(self, key: str) -> str:
        """The worker owning ``key`` (first vnode clockwise of its hash).

        Raises :class:`LookupError` on an empty ring — the caller (the
        front-end) decides how an unroutable request degrades.
        """
        if not self._points:
            raise LookupError("hash ring has no workers")
        at = bisect.bisect_right(self._points, stable_hash(key))
        if at == len(self._points):
            at = 0
        return self._owners[at]

    def successors(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct owners clockwise of ``key``'s hash, primary first.

        ``successors(key)[0] == assign(key)``; the remainder is the
        deterministic fail-over/hedge order for ``key`` — the "next
        distinct worker on the ring" a hedged dispatch re-sends to.
        Returns at most ``limit`` names (default: every worker), and
        ``[]`` on an empty ring.
        """
        if not self._points:
            return []
        cap = len(self._workers) if limit is None else min(
            limit, len(self._workers)
        )
        out: list[str] = []
        start = bisect.bisect_right(self._points, stable_hash(key))
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) >= cap:
                    break
        return out

    def spread(self, keys: list[str]) -> dict[str, int]:
        """Keys per worker over a sample — diagnostics/test helper."""
        out: dict[str, int] = {w: 0 for w in self._workers}
        for key in keys:
            out[self.assign(key)] += 1
        return out


__all__ = ["DEFAULT_REPLICAS", "HashRing", "stable_hash"]
