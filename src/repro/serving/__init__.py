"""repro.serving — the resilient, long-running selector service.

The paper's deployment story (§1 requirement 2, §5.4) is "train once,
deploy many times": a frozen selector answers format queries cheaply
wherever matrices arrive.  This package grows that one-shot ``predict``
into a service that stays correct and *alive* under malformed input,
burst overload, model faults, and model rollover:

- :mod:`repro.serving.protocol` — JSONL request/response wire format
  with structured statuses (``ok`` / ``invalid`` / ``overloaded`` /
  ``fallback``) and machine-readable error codes.
- :mod:`repro.serving.gateway` — ingestion that treats every matrix as
  hostile: byte/dim/nnz budgets, strict MatrixMarket policy (NaN/Inf and
  duplicate coordinates rejected), certified-finite features.
- :mod:`repro.serving.admission` — bounded queue, per-request deadlines,
  shed-oldest load shedding.
- :mod:`repro.serving.breaker` — circuit breaker around model inference
  (closed → open → half-open probes).
- :mod:`repro.serving.reload` — hot model reload: watch by
  mtime/SHA-256, shadow-validate on a golden set, atomic swap,
  quarantine of bad candidates.
- :mod:`repro.serving.server` — the ``repro serve`` loop
  (stdin/stdout JSONL and Unix-socket transports) wiring it together.
- :mod:`repro.serving.drill` — the deterministic chaos drill shared by
  tests, ``repro chaos --target serve``, and the serve-smoke CI job.

Horizontal scaling (``repro serve --workers N``) adds three layers on
top, leaving the per-worker request path above unchanged:

- :mod:`repro.serving.routing` — consistent-hash ring keeping each
  client's admission/breaker state local to one worker.
- :mod:`repro.serving.modelstore` — shared mmap model store: the
  front-end shadow-validates and publishes once, N workers attach
  read-only to the same pages.
- :mod:`repro.serving.frontend` — the asyncio front-end: JSONL fan-out,
  typed worker-loss responses, respawn, queue-depth autoscale, and
  tier-wide metric/health aggregation.

The front-end also runs the tail-latency resilience layer (DESIGN §15):
deadline propagation (``deadline_ms`` on the wire, min-combined with
``--request-timeout``), hedged dispatch under a token-bucket budget
with the conservation contract ``completed == primary_wins +
hedge_wins``, EWMA-scored brownout routing with probe-based
reinstatement, and graceful drain on SIGTERM/``shutdown``.
"""

from repro.serving.admission import AdmissionController
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.drill import (
    DrillExpectation,
    DrillReport,
    build_request_lines,
    run_serve_drill,
    synthetic_frozen_selector,
)
from repro.serving.frontend import ServingTier, TierConfig, TierError
from repro.serving.gateway import GatewayLimits, IngestError, IngestionGateway
from repro.serving.modelstore import ModelStore, ModelStoreError, StoreModelHost
from repro.serving.protocol import (
    Request,
    RequestParseError,
    STATUS_FALLBACK,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUSES,
    encode_response,
    parse_request_line,
)
from repro.serving.reload import (
    ModelHost,
    ModelVersion,
    RELOAD_QUARANTINED,
    RELOAD_SWAPPED,
    RELOAD_UNCHANGED,
    golden_features,
)
from repro.serving.routing import DEFAULT_REPLICAS, HashRing, stable_hash
from repro.serving.server import SelectorServer, ServingConfig

__all__ = [
    "DEFAULT_REPLICAS",
    "HashRing",
    "ModelStore",
    "ModelStoreError",
    "ServingTier",
    "StoreModelHost",
    "TierConfig",
    "TierError",
    "stable_hash",
    "AdmissionController",
    "CLOSED",
    "CircuitBreaker",
    "DrillExpectation",
    "DrillReport",
    "GatewayLimits",
    "HALF_OPEN",
    "IngestError",
    "IngestionGateway",
    "ModelHost",
    "ModelVersion",
    "OPEN",
    "RELOAD_QUARANTINED",
    "RELOAD_SWAPPED",
    "RELOAD_UNCHANGED",
    "Request",
    "RequestParseError",
    "STATUSES",
    "STATUS_FALLBACK",
    "STATUS_INVALID",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "SelectorServer",
    "ServingConfig",
    "build_request_lines",
    "encode_response",
    "golden_features",
    "parse_request_line",
    "run_serve_drill",
    "synthetic_frozen_selector",
]
