"""The resilient selector server: gateway → admission → breaker → model.

``repro serve`` runs this long-lived loop over stdin/stdout JSONL or a
Unix socket.  Every request passes through the full defensive stack:

1. :mod:`repro.serving.protocol` parses the line (byte-capped, typed).
2. :class:`~repro.serving.admission.AdmissionController` bounds the
   backlog and enforces deadlines (shed requests still get responses).
3. :class:`~repro.serving.gateway.IngestionGateway` turns the payload
   into a certified-finite feature vector or an ``invalid`` response.
4. :class:`~repro.serving.reload.ModelHost` supplies the current frozen
   model (hot-reloaded, shadow-validated, atomically swapped).
5. An out-of-distribution guard and
   :class:`~repro.serving.breaker.CircuitBreaker` decide whether the
   model's answer can be trusted; otherwise the request falls back to
   the CSR answer with a machine-readable ``reason``.

The handler itself never raises: any unexpected internal error becomes a
``fallback``/``internal_error`` response, because a wrong-but-safe
format costs some SpMV throughput while a dead server costs every
client.  An optional name-keyed
:class:`~repro.runtime.faults.FaultInjector` wraps inference so the
``repro chaos --target serve`` drill can exercise the breaker
deterministically.
"""

from __future__ import annotations

import os
import select
import time
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.core.deploy import DEFAULT_FALLBACK_FORMAT, rebuild_pipeline
from repro.core.online import OnlineFormatSelector
from repro.obs import LATENCY_BUCKETS, TELEMETRY
from repro.obs.context import new_trace_id
from repro.obs.events import EventLog
from repro.obs.metrics import Histogram
from repro.obs.quantiles import DEFAULT_QUANTILES, quantile_key
from repro.runtime.faults import Corrupted, FaultInjector
from repro.serving.admission import AdmissionController
from repro.serving.breaker import CircuitBreaker
from repro.serving.gateway import GatewayLimits, IngestError, IngestionGateway
from repro.serving.protocol import (
    CODE_DEADLINE,
    CODE_MISSING_FIELD,
    CODE_QUEUE_FULL,
    REASON_BREAKER_OPEN,
    REASON_INFERENCE_ERROR,
    REASON_INTERNAL_ERROR,
    REASON_MODEL_UNUSABLE,
    REASON_OUT_OF_DISTRIBUTION,
    Request,
    RequestParseError,
    STATUS_INVALID,
    encode_response,
    fallback_response,
    invalid_response,
    ok_response,
    overloaded_response,
    parse_request_line,
)
from repro.serving.reload import ModelHost


class InferenceFault(RuntimeError):
    """Model inference produced garbage (e.g. an injected corruption)."""


@dataclass(frozen=True)
class ServingConfig:
    """All knobs of one server instance."""

    model_path: str
    fallback_format: str = DEFAULT_FALLBACK_FORMAT
    #: Request-line byte cap (pre-JSON).
    max_request_bytes: int = 16 * 1024 * 1024
    limits: GatewayLimits = field(default_factory=GatewayLimits)
    queue_size: int = 64
    deadline_seconds: float | None = 5.0
    breaker_failures: int = 5
    breaker_reset_seconds: float = 2.0
    breaker_probes: int = 2
    #: OOD threshold as a multiple of the model's centroid scale
    #: (median nearest-neighbour centroid distance); 0 disables.
    ood_factor: float = 8.0
    #: Watch the model path and hot-swap validated candidates.
    hot_reload: bool = True
    #: Requests drained from the admission queue per micro-batch; the
    #: predict ops among them share one vectorized inference pass
    #: (bit-identical to per-item inference — ml/linalg row-stable
    #: kernels).  1 disables micro-batching.
    max_batch: int = 8
    #: How long ``serve_stream`` lingers for more input before
    #: processing a short batch (seconds); 0 keeps reads non-blocking.
    max_batch_delay_seconds: float = 0.0
    #: Answer predict requests from the tiered cheap-first path: tier 1
    #: classifies on the row-length moments alone and escalates to the
    #: full 21-feature pipeline when its calibrated margin does not
    #: clear the bar (DESIGN §13).  Responses gain a ``tier`` field;
    #: with the default ``False`` nothing changes.
    tiered: bool = False
    #: Stage-1 margin threshold; ``None`` calibrates one per model from
    #: seeded probes at first use (and again after each hot reload).
    tier_margin: float | None = None


class SelectorServer:
    """Long-running, resilient format-selection service."""

    def __init__(
        self,
        config: ServingConfig,
        clock: Callable[[], float] = time.monotonic,
        fault_injector: FaultInjector | None = None,
        access_log: EventLog | None = None,
        host: ModelHost | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.fault_injector = fault_injector
        self.access_log = access_log
        # Always-on latency histogram: the `metrics` op must answer with
        # live quantiles even when the global TELEMETRY switch is off,
        # so the server keeps its own instrument outside the registry.
        self.latency_hist = Histogram(
            "serving.latency_seconds", buckets=LATENCY_BUCKETS
        )
        self.gateway = IngestionGateway(config.limits)
        self.admission = AdmissionController(
            max_pending=config.queue_size,
            deadline_seconds=config.deadline_seconds,
            clock=clock,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failures,
            reset_timeout=config.breaker_reset_seconds,
            probe_successes=config.breaker_probes,
            clock=clock,
        )
        # Tier workers substitute a StoreModelHost attached to the shared
        # mmap store; the default remains the self-validating file host.
        self.host = (
            host if host is not None
            else ModelHost(config.model_path, clock=clock)
        )
        self.counters: TallyCounter = TallyCounter()
        self.latencies: deque[float] = deque(maxlen=4096)
        self.started_at = clock()
        self._online: OnlineFormatSelector | None = None
        self._online_sha: str | None = None
        self._stop = False
        # Micro-batch caches, valid only while draining one batch: the
        # frozen model the precompute ran on, ingested vectors, and
        # (distance, label, centroid) triples keyed by request identity.
        self._batch_model = None
        self._batch_ingest: dict[int, np.ndarray] = {}
        self._batch_results: dict[int, tuple[float, object, int]] = {}
        # Tiered selector cache, keyed on the frozen-model object so a
        # hot reload recalibrates: (selector, TieredSelector).
        self._tiered_cache: tuple[object, object] | None = None

    # -- request processing -------------------------------------------------

    def handle_line(self, line: str) -> dict:
        """Parse + process one request line, bypassing admission.

        Single-shot entry point (tests, socket mode with an empty
        queue); burst traffic goes through :meth:`submit_burst`.
        """
        try:
            request = parse_request_line(line, self.config.max_request_bytes)
        except RequestParseError as exc:
            return self._finish(exc.response)
        return self.process(request)

    def process(self, request: Request) -> dict:
        """Dispatch one admitted request; never raises.

        Every dispatched request gets a trace id and (telemetry on) a
        ``serving.request`` root span whose children cover the stages it
        passed through — gateway, micro-batch cache, breaker, predict.
        The id goes to the trace and the access log only, never into the
        response: responses stay byte-identical across runs.

        A tier front-end that routed this request propagates its trace
        context as a ``_trace`` body field (PR-6 ``TraceContext`` id);
        honoring it stitches the worker-side span tree and access-log
        lines onto the front-end's request trace.  The field never
        influences a response.
        """
        if request.rejection is not None:
            return self._finish(request.rejection, op=request.op)
        # Last deadline gate before any real work: ``take()`` filtered
        # the queue, but batch priming happens between take and process,
        # and the front-end's propagated budget may run out in flight.
        # Answering here costs nothing; predicting for a client that
        # already gave up costs capacity every live client needs.
        if (
            request.deadline is not None
            and request.op in ("predict", "feedback")
            and self.clock() > request.deadline
        ):
            self.counters["deadline_exceeded"] += 1
            TELEMETRY.inc("serving.deadline_exceeded")
            return self._finish(
                overloaded_response(CODE_DEADLINE, request.id), op=request.op
            )
        propagated = request.body.get("_trace")
        trace_id = (
            propagated
            if isinstance(propagated, str) and propagated
            else new_trace_id()
        )
        t0 = time.perf_counter()
        with TELEMETRY.span(
            "serving.request", trace=trace_id, op=request.op
        ):
            try:
                handler = getattr(self, f"_op_{request.op}")
                response = handler(request)
            except Exception as exc:  # the loop survives anything
                if request.op in ("predict", "feedback"):
                    response = fallback_response(
                        self.config.fallback_format,
                        REASON_INTERNAL_ERROR,
                        request.id,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    response = invalid_response(
                        "internal_error",
                        f"{type(exc).__name__}: {exc}",
                        request.id,
                    )
        elapsed = time.perf_counter() - t0
        self.latencies.append(elapsed)
        self.latency_hist.observe(elapsed)
        if TELEMETRY.enabled:
            TELEMETRY.observe(
                "serving.latency_seconds", elapsed, buckets=LATENCY_BUCKETS
            )
        return self._finish(
            response, op=request.op, trace=trace_id, latency=elapsed
        )

    def _finish(
        self,
        response: dict,
        op: str | None = None,
        trace: str | None = None,
        latency: float | None = None,
    ) -> dict:
        status = response.get("status", STATUS_INVALID)
        self.counters["requests"] += 1
        self.counters[status] += 1
        TELEMETRY.inc("serving.requests")
        TELEMETRY.inc(f"serving.responses.{status}")
        if self.access_log is not None:
            fields: dict = {"status": status, "id": response.get("id")}
            if op is not None:
                fields["op"] = op
            if trace is not None:
                fields["trace"] = trace
            if latency is not None:
                fields["latency_ms"] = round(latency * 1e3, 3)
            code = response.get("code") or response.get("reason")
            if code is not None:
                fields["code"] = code
            self.access_log.emit("request", **fields)
        return response

    # -- ops ----------------------------------------------------------------

    def _current_model(self):
        """Run the watch hook, then read the active model *once*."""
        if self.config.hot_reload:
            self.host.check_reload()
        return self.host.active

    def _op_predict(self, request: Request) -> dict:
        if self.config.tiered:
            return self._op_predict_tiered(request)
        try:
            with TELEMETRY.span("serving.gateway"):
                vec = self._ingest_cached(request)
        except IngestError as exc:
            return invalid_response(exc.code, str(exc), request.id)
        active = self._current_model()
        if active.selector is None:
            return fallback_response(
                self.config.fallback_format,
                REASON_MODEL_UNUSABLE,
                request.id,
                error=active.error,
            )
        with TELEMETRY.span("serving.breaker"):
            allowed = self.breaker.allow()
        if not allowed:
            TELEMETRY.inc("serving.fallback.breaker_open")
            return fallback_response(
                self.config.fallback_format, REASON_BREAKER_OPEN, request.id
            )
        # A mid-batch hot swap invalidates the precompute: only consult
        # it when it ran on the very model object now serving.
        precomputed = (
            self._batch_results.pop(id(request), None)
            if self._batch_model is active.selector
            else None
        )
        try:
            with TELEMETRY.span(
                "serving.predict", cached=precomputed is not None
            ):
                distance, label, centroid = self._infer(
                    active.selector, vec, request.id or "anon", precomputed
                )
        except Exception:
            self.breaker.record_failure()
            TELEMETRY.inc("serving.fallback.inference_error")
            return fallback_response(
                self.config.fallback_format,
                REASON_INFERENCE_ERROR,
                request.id,
            )
        self.breaker.record_success()
        if (
            self.config.ood_factor > 0
            and np.isfinite(active.scale)
            and distance > self.config.ood_factor * active.scale
        ):
            TELEMETRY.inc("serving.fallback.out_of_distribution")
            return fallback_response(
                self.config.fallback_format,
                REASON_OUT_OF_DISTRIBUTION,
                request.id,
                distance=round(float(distance), 6),
                threshold=round(
                    float(self.config.ood_factor * active.scale), 6
                ),
            )
        return ok_response(
            request.id, format=label, centroid=centroid, source="model"
        )

    def _ingest_cached(self, request: Request) -> np.ndarray:
        """Ingest a predict body, reusing the micro-batch's parse."""
        cached = self._batch_ingest.pop(id(request), None)
        if cached is not None:
            return cached
        _, vec = self.gateway.ingest(request.body)
        return vec

    def _infer(self, selector, vec: np.ndarray, key: str, precomputed=None):
        """One guarded inference; faults (real or injected) raise.

        ``precomputed`` is the micro-batch's (distance, label, centroid)
        for this request — bit-identical to the per-item math below, so
        consulting it cannot change any response.  Injection rolls and
        result validation stay per item either way.
        """
        injector = self.fault_injector
        if injector is not None:
            delay = injector.delay_for(key, attempt=0)
            if delay > 0:
                time.sleep(delay)
            if injector.fails(key, attempt=0):
                raise InferenceFault(f"injected inference failure for {key!r}")
        if precomputed is not None:
            distance, label, centroid = precomputed
        else:
            centroid = int(selector.assign(vec)[0])
            label = selector.centroid_labels[centroid]
            distance = float(selector.nearest_distance(vec)[0])
        if injector is not None and injector.corrupts(key, attempt=0):
            label = Corrupted(key, attempt=0)
        if not isinstance(label, str) or not label:
            raise InferenceFault(f"inference produced bad label {label!r}")
        if not np.isfinite(distance):
            raise InferenceFault("inference produced non-finite distance")
        return distance, str(label), centroid

    # -- tiered predict path -------------------------------------------

    def _tiered_for(self, selector):
        """The (cached) tiered selector for the active frozen model."""
        cached = self._tiered_cache
        if cached is not None and cached[0] is selector:
            return cached[1]
        from repro.core.tiered import TieredSelector

        if self.config.tier_margin is not None:
            tiered = TieredSelector(selector, self.config.tier_margin)
        else:
            tiered = TieredSelector.calibrate(selector)
        self._tiered_cache = (selector, tiered)
        return tiered

    def _op_predict_tiered(self, request: Request) -> dict:
        """Predict via the cheap-first tiered path (``--tiered``).

        Same defensive frame as :meth:`_op_predict` — gateway parse,
        model/breaker gates, injected-fault and label validation, OOD
        guard — but feature extraction is deferred: tier-1 answers need
        only the row-length histogram, and only escalations pay for the
        full certified 21-feature vector.  Tier-1 answers skip the OOD
        distance guard (no full-space distance exists); the calibrated
        margin is the confidence gate on that path.  Responses carry a
        ``tier`` field; escalated answers are bit-identical to the
        non-tiered path's.
        """
        try:
            with TELEMETRY.span("serving.gateway"):
                matrix = self.gateway.parse_matrix(request.body)
        except IngestError as exc:
            return invalid_response(exc.code, str(exc), request.id)
        active = self._current_model()
        if active.selector is None:
            return fallback_response(
                self.config.fallback_format,
                REASON_MODEL_UNUSABLE,
                request.id,
                error=active.error,
            )
        with TELEMETRY.span("serving.breaker"):
            allowed = self.breaker.allow()
        if not allowed:
            TELEMETRY.inc("serving.fallback.breaker_open")
            return fallback_response(
                self.config.fallback_format, REASON_BREAKER_OPEN, request.id
            )
        tiered = self._tiered_for(active.selector)
        try:
            with TELEMETRY.span("serving.predict", tiered=True):
                decision, distance = self._infer_tiered(
                    tiered, matrix, request.id or "anon"
                )
        except IngestError as exc:
            # An escalation's feature extraction failed certification —
            # the same gateway rejection as the non-tiered path.
            return invalid_response(exc.code, str(exc), request.id)
        except Exception:
            self.breaker.record_failure()
            TELEMETRY.inc("serving.fallback.inference_error")
            return fallback_response(
                self.config.fallback_format,
                REASON_INFERENCE_ERROR,
                request.id,
            )
        self.breaker.record_success()
        if (
            distance is not None
            and self.config.ood_factor > 0
            and np.isfinite(active.scale)
            and distance > self.config.ood_factor * active.scale
        ):
            TELEMETRY.inc("serving.fallback.out_of_distribution")
            return fallback_response(
                self.config.fallback_format,
                REASON_OUT_OF_DISTRIBUTION,
                request.id,
                distance=round(float(distance), 6),
                threshold=round(
                    float(self.config.ood_factor * active.scale), 6
                ),
            )
        tiered.account(decision)
        return ok_response(
            request.id,
            format=decision.format,
            centroid=decision.centroid,
            source="model",
            tier=decision.tier,
        )

    def _infer_tiered(self, tiered, matrix, key: str):
        """(decision, full-space distance or None) for one matrix.

        Injection rolls and result validation mirror :meth:`_infer`;
        the distance is only available (and only meaningful) on
        escalations, which run the frozen model's own full pipeline.
        """
        from repro.core.tiered import TierDecision

        injector = self.fault_injector
        if injector is not None:
            delay = injector.delay_for(key, attempt=0)
            if delay > 0:
                time.sleep(delay)
            if injector.fails(key, attempt=0):
                raise InferenceFault(f"injected inference failure for {key!r}")
        with TELEMETRY.span("select.tier1"):
            nrows, ncols = matrix.shape
            from repro.features.extract import cheap_features_from_lengths

            cheap = cheap_features_from_lengths(
                nrows, ncols, matrix.nnz, matrix.row_lengths()
            )
            decision, margin = tiered.stage1_with_margin(cheap)
        distance = None
        if decision is None:
            with TELEMETRY.span("select.escalate"):
                vec = self.gateway.features(matrix)
                selector = tiered.frozen
                centroid = int(selector.assign(vec)[0])
                label = selector.centroid_labels[centroid]
                distance = float(selector.nearest_distance(vec)[0])
                decision = TierDecision(
                    format=str(label),
                    tier=2,
                    margin=margin,
                    centroid=centroid,
                )
        label = decision.format
        if injector is not None and injector.corrupts(key, attempt=0):
            label = Corrupted(key, attempt=0)
        if not isinstance(label, str) or not label:
            raise InferenceFault(f"inference produced bad label {label!r}")
        if distance is not None and not np.isfinite(distance):
            raise InferenceFault("inference produced non-finite distance")
        return decision, distance

    def _op_feedback(self, request: Request) -> dict:
        """Observed-best-format feedback feeds an online selector.

        The online layer (paper §7) is seeded from the frozen model's
        own preprocessing, so streamed observations and model
        predictions live in the same feature space; ``agrees`` measures
        live model-vs-reality drift.
        """
        best = request.body.get("best_format")
        if not isinstance(best, str) or not best:
            return invalid_response(
                CODE_MISSING_FIELD,
                "feedback needs a non-empty 'best_format' string",
                request.id,
            )
        try:
            _, vec = self.gateway.ingest(request.body)
        except IngestError as exc:
            return invalid_response(exc.code, str(exc), request.id)
        active = self._current_model()
        if active.selector is None:
            return fallback_response(
                self.config.fallback_format,
                REASON_MODEL_UNUSABLE,
                request.id,
                error=active.error,
            )
        if self._online is None or self._online_sha != active.sha256:
            self._online = OnlineFormatSelector(
                rebuild_pipeline(active.selector),
                default_format=self.config.fallback_format,
            )
            self._online_sha = active.sha256
        model_label = str(active.selector.predict(vec)[0])
        online_label = self._online.observe(vec[0], best_format=best)
        agrees = model_label == best
        self.counters["feedback_agree" if agrees else "feedback_disagree"] += 1
        TELEMETRY.inc(
            "serving.feedback.agree" if agrees else "serving.feedback.disagree"
        )
        return ok_response(
            request.id,
            format=model_label,
            online_format=online_label,
            agrees=agrees,
            online_clusters=self._online.n_clusters,
        )

    def _op_health(self, request: Request) -> dict:
        return ok_response(
            request.id,
            op="health",
            uptime_seconds=round(self.clock() - self.started_at, 3),
            model=self.host.snapshot(),
            breaker=self.breaker.snapshot(),
            queue_depth=self.admission.depth,
            shed=self.admission.n_shed,
            expired=self.admission.n_expired,
            counters=dict(self.counters),
            p99_latency_ms=round(self.p99_latency() * 1e3, 3),
        )

    def _op_reload(self, request: Request) -> dict:
        event = self.host.check_reload()
        return ok_response(
            request.id, op="reload", event=event, model=self.host.snapshot()
        )

    def _op_shutdown(self, request: Request) -> dict:
        self._stop = True
        return ok_response(request.id, op="shutdown")

    # -- observability ops ---------------------------------------------------

    def latency_quantiles(self) -> dict:
        """Live p50/p95/p99 of request latency, in milliseconds.

        Estimated from the always-on histogram; ``None`` per quantile
        until the first request (NaN is not valid JSON).
        """
        out: dict = {}
        for q in DEFAULT_QUANTILES:
            est = self.latency_hist.quantile(q)
            out[quantile_key(q)] = (
                round(est * 1e3, 6) if np.isfinite(est) else None
            )
        return out

    def metrics_snapshot(self) -> dict:
        """Registry snapshot for the ``metrics`` op and SLO evaluation.

        Starts from the global registry (populated when telemetry is
        enabled) and overlays the server's own always-on instruments, so
        the snapshot carries latency data and SLO inputs even with the
        global switch off.
        """
        snap = dict(TELEMETRY.registry.snapshot())
        snap["serving.latency_seconds"] = self.latency_hist.snapshot()
        snap["serving.breaker.open_seconds"] = {
            "type": "gauge",
            "value": round(self.breaker.open_seconds, 6),
        }
        snap["serving.queue.depth"] = {
            "type": "gauge",
            "value": float(self.admission.depth),
        }
        return {name: snap[name] for name in sorted(snap)}

    def _op_metrics(self, request: Request) -> dict:
        return ok_response(
            request.id,
            op="metrics",
            quantiles_ms=self.latency_quantiles(),
            metrics=self.metrics_snapshot(),
        )

    def _op_healthz(self, request: Request) -> dict:
        """Cheap liveness + SLO summary (no model read, no reload)."""
        breaker = self.breaker.snapshot()
        usable = self.host.active.selector is not None
        return ok_response(
            request.id,
            op="healthz",
            state="ok" if usable and breaker["state"] != "open" else "degraded",
            uptime_seconds=round(self.clock() - self.started_at, 3),
            model_usable=usable,
            breaker_state=breaker["state"],
            breaker_open_seconds=breaker["open_seconds"],
            queue_depth=self.admission.depth,
            shed=self.admission.n_shed,
            expired=self.admission.n_expired,
            latency_ms=self.latency_quantiles(),
        )

    # -- burst handling (admission-controlled) ------------------------------

    def submit_burst(self, lines: Iterable[str]) -> list[dict]:
        """Admit a burst of request lines, then drain the queue.

        Models what the reader thread sees when a client pipes faster
        than the server processes: parse rejections answer immediately,
        the bounded queue sheds its oldest on overflow, dequeued
        requests past their deadline are answered ``overloaded``, and
        the survivors are processed in arrival order.  Every line gets
        exactly one response.
        """
        responses: list[dict] = []
        with TELEMETRY.span("serving.admission"):
            for line in lines:
                try:
                    request = parse_request_line(
                        line, self.config.max_request_bytes
                    )
                except RequestParseError as exc:
                    responses.append(self._finish(exc.response))
                    continue
                for shed in self.admission.offer(request):
                    responses.append(self._finish(
                        overloaded_response(CODE_QUEUE_FULL, shed.id),
                        op=shed.op,
                    ))
        responses.extend(self._drain_queue())
        return responses

    def _drain_queue(self) -> list[dict]:
        """Drain the admission queue in micro-batches of ``max_batch``.

        Each drained batch is primed with one vectorized inference pass
        over its predict ops; every request is then answered
        *individually* through the unchanged per-item flow (deadline →
        gateway → breaker → inference → OOD), which consults the
        precompute instead of redoing the same row-stable math.
        Response order is exactly the one-at-a-time order: expired
        notices surface at their take position, answers at theirs.
        """
        out: list[dict] = []
        limit = max(1, self.config.max_batch)
        while True:
            # ("resp", answered) | ("req", pending) in take order.
            entries: list[tuple[str, object]] = []
            batch: list[Request] = []
            while len(batch) < limit:
                request, expired = self.admission.take()
                for dead in expired:
                    entries.append((
                        "resp",
                        self._finish(
                            overloaded_response(CODE_DEADLINE, dead.id)
                        ),
                    ))
                if request is None:
                    break
                entries.append(("req", request))
                batch.append(request)
            if not entries:
                break
            drained_all = len(batch) < limit
            with TELEMETRY.span("serving.microbatch", n=len(batch)):
                self._prime_batch(batch)
            try:
                for kind, payload in entries:
                    if kind == "resp":
                        out.append(payload)  # type: ignore[arg-type]
                    else:
                        out.append(self.process(payload))
            finally:
                self._batch_model = None
                self._batch_ingest.clear()
                self._batch_results.clear()
            if drained_all:
                break
        return out

    def _prime_batch(self, batch: list[Request]) -> None:
        """Precompute shared inference for one micro-batch.

        Best-effort only: any problem (unusable model, ingest failure,
        inference error) leaves the affected requests out of the cache
        and the per-item flow handles them exactly as before.  The
        breaker is *not* consulted here — ``allow()`` advances half-open
        probe state, so it must run once per request, in ``_op_predict``.
        """
        self._batch_model = None
        self._batch_ingest.clear()
        self._batch_results.clear()
        if self.config.tiered:
            # Priming full-ingests every request up front, which is
            # exactly the cost the cheap-first tiered path avoids.
            return
        if self.config.max_batch <= 1 or len(batch) <= 1:
            return
        keys: list[int] = []
        vecs: list[np.ndarray] = []
        for request in batch:
            if request.op != "predict" or request.rejection is not None:
                continue
            try:
                _, vec = self.gateway.ingest(request.body)
            except IngestError:
                continue  # the per-item path answers `invalid`
            self._batch_ingest[id(request)] = vec
            keys.append(id(request))
            vecs.append(vec[0])
        if len(vecs) <= 1:
            return
        if self.config.hot_reload:
            self.host.check_reload()
        selector = self.host.active.selector
        if selector is None:
            return
        try:
            X = np.vstack(vecs)
            assigned = selector.assign(X)
            distances = selector.nearest_distance(X)
        except Exception:
            return  # per-item inference recomputes and degrades itself
        self._batch_model = selector
        for key, centroid, distance in zip(keys, assigned, distances):
            self._batch_results[key] = (
                float(distance),
                selector.centroid_labels[int(centroid)],
                int(centroid),
            )
        TELEMETRY.observe("serving.batch_size", float(len(batch)))
        TELEMETRY.inc("serving.microbatch.primed", len(vecs))

    def p99_latency(self) -> float:
        """p99 of recent request latencies (seconds; 0 when idle)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[rank]

    # -- transports ---------------------------------------------------------

    def _drain_ready(
        self, stream, limit: int = 256, wait_seconds: float = 0.0
    ) -> list[str]:
        """Opportunistically batch-read lines already waiting on ``stream``.

        Uses ``select`` on the underlying fd; with ``wait_seconds`` 0 it
        never blocks, otherwise it lingers up to that budget for more
        input so short bursts fill a fuller micro-batch
        (``--max-batch-delay-ms``).  On streams without a real fd
        (StringIO) it reads nothing and the caller degrades to
        line-at-a-time processing.
        """
        lines: list[str] = []
        try:
            fd = stream.fileno()
        except (AttributeError, OSError, ValueError):
            return lines
        deadline = time.monotonic() + max(wait_seconds, 0.0)
        while len(lines) < limit:
            timeout = (
                max(0.0, deadline - time.monotonic())
                if wait_seconds > 0
                else 0
            )
            try:
                ready, _, _ = select.select([fd], [], [], timeout)
            except (OSError, ValueError):
                break
            if not ready:
                break
            line = stream.readline()
            if not line:
                break
            lines.append(line)
        return lines

    def serve_stream(self, instream, outstream) -> int:
        """JSONL loop: read request lines, write one response line each."""
        while not self._stop:
            line = instream.readline()
            if not line:
                break
            if not line.strip():
                continue
            lines = [line] + self._drain_ready(
                instream,
                limit=max(256, self.config.max_batch),
                wait_seconds=self.config.max_batch_delay_seconds,
            )
            for response in self.submit_burst(lines):
                outstream.write(encode_response(response) + "\n")
            outstream.flush()
        return 0

    def serve_socket(self, socket_path: str) -> int:
        """Unix-socket loop: one JSONL conversation per connection."""
        import socket as socketlib

        if os.path.exists(socket_path):
            os.unlink(socket_path)
        server_socket = socketlib.socket(
            socketlib.AF_UNIX, socketlib.SOCK_STREAM
        )
        try:
            server_socket.bind(socket_path)
            server_socket.listen(8)
            while not self._stop:
                conn, _ = server_socket.accept()
                with conn:
                    reader = conn.makefile("r", encoding="utf-8")
                    for line in reader:
                        if not line.strip():
                            continue
                        for response in self.submit_burst([line]):
                            conn.sendall(
                                (encode_response(response) + "\n").encode()
                            )
                        if self._stop:
                            break
        finally:
            server_socket.close()
            if os.path.exists(socket_path):
                os.unlink(socket_path)
        return 0
