"""Deterministic serving drill: hostile traffic, bursts, and model swaps.

One harness drives every serving robustness check — the
``tests/serving`` end-to-end tests, ``repro chaos --target serve``, and
the ``serve-smoke`` CI job — so they all agree on what "survives" means:

- every submitted line receives exactly one structured response,
- every response's ``status`` is one of the four protocol statuses,
- crafted-malformed payloads come back ``invalid`` with the *expected*
  error code (or ``overloaded`` if admission shed them first),
- the process never raises out of the serving loop.

Request generation is pure (seeded NumPy generators keyed by request
index), so a drill is exactly reproducible — the same discipline as the
campaign fault injection in :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import asyncio
import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.deploy import FrozenSelector
from repro.formats.coo import COOMatrix
from repro.formats.io import matrix_market_string
from repro.serving.protocol import (
    STATUS_FALLBACK,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUSES,
)
from repro.serving.server import SelectorServer

#: Formats a synthetic model recommends, cycled across centroids.
_LABEL_CYCLE = ("csr", "ell", "coo", "hyb")


def synthetic_frozen_selector(
    seed: int = 0, n_centroids: int = 12
) -> FrozenSelector:
    """A structurally valid frozen model with deterministic arrays.

    Not *trained* on anything — the drill exercises the serving path,
    not selection quality — but it runs the real transform → assign →
    label pipeline end to end.
    """
    rng = np.random.default_rng(seed)
    n_features = 21
    labels = np.array(
        [_LABEL_CYCLE[i % len(_LABEL_CYCLE)] for i in range(n_centroids)],
        dtype=object,
    )
    return FrozenSelector(
        transform_kind=None,
        transform_shift=None,
        transform_apply=None,
        scaler_min=np.zeros(n_features),
        scaler_span=np.ones(n_features),
        pca_mean=None,
        pca_components=None,
        centroids=rng.random((n_centroids, n_features)),
        centroid_labels=labels,
    )


def _random_matrix_text(index: int, seed: int) -> str:
    """A small valid MatrixMarket body, unique coordinates, finite values."""
    rng = np.random.default_rng(seed * 1_000_003 + index)
    nrows = int(rng.integers(4, 24))
    ncols = int(rng.integers(4, 24))
    nnz = int(rng.integers(1, max(2, nrows * ncols // 6)))
    flat = rng.choice(nrows * ncols, size=nnz, replace=False)
    rows, cols = np.divmod(flat, ncols)
    vals = rng.uniform(0.5, 2.0, size=nnz)
    return matrix_market_string(COOMatrix((nrows, ncols), rows, cols, vals))


#: Crafted-malformed payload builders: (tag, expected invalid code, builder).
_POISON_PAYLOADS: tuple[tuple[str, str, Callable[[], str]], ...] = (
    ("bad_json", "bad_json", lambda: '{"op": "predict", "mtx": '),
    ("not_object", "not_object", lambda: '["predict"]'),
    ("unknown_op", "unknown_op", lambda: '{"op": "explode"}'),
    ("no_payload", "missing_field", lambda: '{"op": "predict"}'),
    (
        "bad_banner",
        "bad_banner",
        lambda: json.dumps({"op": "predict", "mtx": "hello world\n1 1 1\n"}),
    ),
    (
        "nan_value",
        "nonfinite_value",
        lambda: json.dumps(
            {
                "op": "predict",
                "mtx": "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n1 1 nan\n",
            }
        ),
    ),
    (
        "duplicate_entry",
        "duplicate_entry",
        lambda: json.dumps(
            {
                "op": "predict",
                "mtx": "%%MatrixMarket matrix coordinate real general\n"
                "2 2 2\n1 1 1.0\n1 1 2.0\n",
            }
        ),
    ),
    (
        "huge_nnz",
        "too_large",
        lambda: json.dumps(
            {
                "op": "predict",
                "mtx": "%%MatrixMarket matrix coordinate real general\n"
                "3 3 999999999999\n1 1 1.0\n",
            }
        ),
    ),
    (
        "out_of_range",
        "index_out_of_range",
        lambda: json.dumps(
            {
                "op": "predict",
                "mtx": "%%MatrixMarket matrix coordinate real general\n"
                "2 2 1\n7 7 1.0\n",
            }
        ),
    ),
    (
        "truncated",
        "count_mismatch",
        lambda: json.dumps(
            {
                "op": "predict",
                "mtx": "%%MatrixMarket matrix coordinate real general\n"
                "5 5 9\n1 1 1.0\n2 2 1.0\n",
            }
        ),
    ),
    (
        "negative_dims",
        "bad_size",
        lambda: json.dumps(
            {
                "op": "predict",
                "mtx": "%%MatrixMarket matrix coordinate real general\n"
                "-3 3 1\n1 1 1.0\n",
            }
        ),
    ),
)


@dataclass
class DrillExpectation:
    """What statuses (and invalid-code) a request may legally draw."""

    statuses: tuple[str, ...]
    invalid_code: str | None = None


def build_request_lines(
    n: int, seed: int = 0, oversize_bytes: int | None = None
) -> tuple[list[str], dict[str, DrillExpectation]]:
    """``n`` deterministic request lines plus per-id expectations.

    Roughly 60% valid predict requests, a rotating cast of malformed /
    poison payloads, periodic health probes, and (when
    ``oversize_bytes`` is given) occasional oversized inline matrices.
    Malformed payloads may still legally come back ``overloaded`` — a
    shed request is shed before it is parsed deeply.
    """
    lines: list[str] = []
    expectations: dict[str, DrillExpectation] = {}
    poison_cursor = 0
    for i in range(n):
        request_id = f"r{i}"
        if i % 17 == 5:
            lines.append(json.dumps({"id": request_id, "op": "health"}))
            expectations[request_id] = DrillExpectation(
                (STATUS_OK, STATUS_OVERLOADED)
            )
        elif i % 23 == 7 and oversize_bytes is not None:
            body = {
                "id": request_id,
                "op": "predict",
                "mtx": "%" * (oversize_bytes + 1),
            }
            lines.append(json.dumps(body))
            expectations[request_id] = DrillExpectation(
                (STATUS_INVALID, STATUS_OVERLOADED),
                invalid_code="payload_too_large",
            )
        elif i % 3 == 1:
            tag, code, builder = _POISON_PAYLOADS[
                poison_cursor % len(_POISON_PAYLOADS)
            ]
            poison_cursor += 1
            try:
                payload = json.loads(builder())
                payload["id"] = request_id
                lines.append(json.dumps(payload))
                expectations[request_id] = DrillExpectation(
                    (STATUS_INVALID, STATUS_OVERLOADED), invalid_code=code
                )
            except (ValueError, TypeError):
                # Deliberately unparseable (or non-object) line: no id
                # survives parsing, so the response's id is null —
                # counted but not tracked per-id.
                lines.append(builder())
        else:
            body = {
                "id": request_id,
                "op": "predict",
                "mtx": _random_matrix_text(i, seed),
            }
            lines.append(json.dumps(body))
            # A valid request may be answered by the model, shed under
            # burst, or served by the fallback while the breaker is
            # open / faults are injected.
            expectations[request_id] = DrillExpectation(
                ("ok", "fallback", "overloaded")
            )
    return lines, expectations


def tier_expectations(
    expectations: dict[str, DrillExpectation],
) -> dict[str, DrillExpectation]:
    """Widen single-process expectations for the multi-worker tier.

    A worker may die with any routed request in flight; the front-end
    then answers predict/feedback with a *typed* ``fallback`` (reason
    ``worker_lost``) instead of hanging.  Every tracked id therefore
    may legally draw ``fallback`` on top of its single-process status
    set; the invalid-code expectation still applies whenever the
    response actually is ``invalid``.
    """
    widened: dict[str, DrillExpectation] = {}
    for request_id, expected in expectations.items():
        statuses = expected.statuses
        if STATUS_FALLBACK not in statuses:
            statuses = statuses + (STATUS_FALLBACK,)
        widened[request_id] = DrillExpectation(
            statuses, expected.invalid_code
        )
    return widened


@dataclass
class DrillReport:
    """Outcome of one serving drill."""

    n_requests: int = 0
    n_responses: int = 0
    by_status: Counter = field(default_factory=Counter)
    by_code: Counter = field(default_factory=Counter)
    by_reason: Counter = field(default_factory=Counter)
    violations: list[str] = field(default_factory=list)
    swap_events: list[str] = field(default_factory=list)
    breaker_opens: int = 0
    p99_latency_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_text(self) -> str:
        lines = [
            f"serving drill: {self.n_requests} requests, "
            f"{self.n_responses} responses, "
            f"p99 {self.p99_latency_ms:.2f} ms",
            "  statuses : "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(self.by_status.items())
            ),
        ]
        if self.by_code:
            lines.append(
                "  codes    : "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.by_code.items())
                )
            )
        if self.by_reason:
            lines.append(
                "  reasons  : "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.by_reason.items())
                )
            )
        lines.append(
            f"  breaker  : {self.breaker_opens} open transition(s)"
        )
        if self.swap_events:
            lines.append("  reloads  : " + ", ".join(self.swap_events))
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    - {v}" for v in self.violations[:20])
        else:
            lines.append("  contract : every request answered, no crashes")
        return "\n".join(lines)


def run_serve_drill(
    server: SelectorServer,
    lines: list[str],
    expectations: dict[str, DrillExpectation] | None = None,
    burst: int = 1,
    actions: dict[int, Callable[[], str | None]] | None = None,
) -> DrillReport:
    """Feed ``lines`` to ``server`` in bursts and audit every response.

    ``actions`` maps a burst index to a callable run *before* that burst
    (model swaps, fault toggles); a non-None return value is recorded in
    the report's ``swap_events``.
    """
    expectations = expectations or {}
    report = DrillReport(n_requests=len(lines))
    answered: Counter = Counter()
    burst_index = 0
    for start in range(0, len(lines), max(1, burst)):
        if actions and burst_index in actions:
            try:
                event = actions[burst_index]()
                if event:
                    report.swap_events.append(event)
            except Exception as exc:
                report.violations.append(f"drill action failed: {exc}")
        burst_index += 1
        chunk = lines[start : start + max(1, burst)]
        try:
            responses = server.submit_burst(chunk)
        except Exception as exc:
            report.violations.append(
                f"server raised out of submit_burst: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        if len(responses) != len(chunk):
            report.violations.append(
                f"burst of {len(chunk)} lines drew {len(responses)} "
                f"responses"
            )
        for response in responses:
            _audit_response(report, answered, expectations, response)
    _audit_coverage(report, answered, expectations)
    report.breaker_opens = server.breaker.n_opens
    report.p99_latency_ms = server.p99_latency() * 1e3
    return report


def _audit_response(
    report: DrillReport,
    answered: Counter,
    expectations: dict[str, DrillExpectation],
    response: dict,
) -> None:
    """Check one response against the contract; record in ``report``."""
    report.n_responses += 1
    status = response.get("status")
    report.by_status[status] += 1
    if "code" in response:
        report.by_code[response["code"]] += 1
    if "reason" in response:
        report.by_reason[response["reason"]] += 1
    if status not in STATUSES:
        report.violations.append(
            f"unknown status {status!r} in {response}"
        )
    request_id = response.get("id")
    if request_id is not None:
        answered[request_id] += 1
        expected = expectations.get(request_id)
        if expected is not None:
            if status not in expected.statuses:
                report.violations.append(
                    f"{request_id}: status {status!r} not in "
                    f"{expected.statuses}"
                )
            elif (
                status == STATUS_INVALID
                and expected.invalid_code is not None
                and response.get("code") != expected.invalid_code
            ):
                report.violations.append(
                    f"{request_id}: code "
                    f"{response.get('code')!r} != expected "
                    f"{expected.invalid_code!r}"
                )


def _audit_coverage(
    report: DrillReport,
    answered: Counter,
    expectations: dict[str, DrillExpectation],
) -> None:
    for request_id, count in answered.items():
        if count != 1:
            report.violations.append(
                f"{request_id}: answered {count} times"
            )
    for request_id in expectations:
        if request_id not in answered:
            report.violations.append(f"{request_id}: never answered")


def audit_tier_responses(
    pairs: list[tuple[str, dict]],
    expectations: dict[str, DrillExpectation] | None = None,
    n_requests: int | None = None,
) -> DrillReport:
    """Audit ``(line, response)`` pairs collected from the tier front-end.

    The multi-worker analogue of the in-process audit inside
    :func:`run_serve_drill`: same contract (exactly one structured
    response per line, legal status, expected invalid code), but the
    responses were gathered by a socket client
    (:func:`repro.serving.frontend.drive_tier`) instead of
    ``submit_burst``.  Breaker/latency fields are left zero — tier-wide
    figures come from the aggregated ``metrics`` op instead.
    """
    expectations = expectations or {}
    report = DrillReport(
        n_requests=len(pairs) if n_requests is None else n_requests
    )
    answered: Counter = Counter()
    for _line, response in pairs:
        _audit_response(report, answered, expectations, response)
    _audit_coverage(report, answered, expectations)
    return report


def audit_tier_conservation(tier) -> list[str]:
    """Check the tier's accounting invariants; returns violations.

    Two exact conservation laws (DESIGN §15) plus one bound:

    - ``routed == completed + worker_lost`` — no routed request is ever
      double-counted or silently dropped, hedged or not.
    - ``completed == primary_wins + hedge_wins`` — every completed
      request was won by exactly one dispatch branch; a hedge that
      fires never inflates the completion count.
    - hedge volume stays within the token-bucket budget:
      ``hedges <= hedge_budget * routed + burst``.
    """
    violations: list[str] = []
    if tier.n_routed != tier.n_completed + tier.n_worker_lost:
        violations.append(
            f"conservation: routed={tier.n_routed} != "
            f"completed={tier.n_completed} + "
            f"worker_lost={tier.n_worker_lost}"
        )
    if tier.n_completed != tier.n_primary_wins + tier.n_hedge_wins:
        violations.append(
            f"hedge conservation: completed={tier.n_completed} != "
            f"primary_wins={tier.n_primary_wins} + "
            f"hedge_wins={tier.n_hedge_wins}"
        )
    budget = tier.config.hedge_budget
    if budget > 0:
        burst = max(1.0, 32.0 * budget)
        allowed = budget * tier.n_routed + burst
        if tier.n_hedges > allowed + 1e-9:
            violations.append(
                f"hedge budget: {tier.n_hedges} hedges over "
                f"{tier.n_routed} routed exceeds "
                f"{budget:.2%} + burst {burst:.1f}"
            )
    return violations


async def run_tier_drain_drill(
    socket_path: str, n_inflight: int = 4, seed: int = 0
) -> DrillReport:
    """Drive a graceful drain against a running tier front-end.

    The drain contract: **zero silently-dropped requests**.  Concretely,

    - requests in flight when ``shutdown`` lands are answered (any
      structured status), never left hanging or cut off,
    - the shutdown acknowledgement itself reports ``draining``,
    - a straggler arriving mid-drain draws a typed
      ``overloaded``/``draining`` refusal — a fast clean no, not a hang.

    Every read is bounded, so a broken drain shows up as a violation in
    the returned report instead of a hung drill.
    """
    report = DrillReport(n_requests=n_inflight + 2)

    async def bounded_readline(reader, tag: str) -> bytes | None:
        try:
            return await asyncio.wait_for(reader.readline(), timeout=30.0)
        except asyncio.TimeoutError:
            report.violations.append(f"{tag}: no response within 30s")
            return None

    # In-flight load: one predict per connection, written but not yet
    # awaited, so they are inside the fleet when shutdown arrives.
    conns = []
    for c in range(n_inflight):
        reader, writer = await asyncio.open_unix_connection(socket_path)
        line = json.dumps(
            {
                "id": f"drain{c}",
                "op": "predict",
                "client": f"drain-client-{c}",
                "mtx": _random_matrix_text(c, seed),
            }
        )
        writer.write((line + "\n").encode())
        await writer.drain()
        conns.append((reader, writer))
    # The straggler's connection is opened *before* the drain begins so
    # its refusal cannot race the final teardown.
    straggler_reader, straggler_writer = await asyncio.open_unix_connection(
        socket_path
    )
    await asyncio.sleep(0.05)
    ctl_reader, ctl_writer = await asyncio.open_unix_connection(socket_path)
    ctl_writer.write(b'{"id": "drain_ctl", "op": "shutdown"}\n')
    await ctl_writer.drain()
    raw = await bounded_readline(ctl_reader, "drain_ctl")
    if raw:
        ack = json.loads(raw)
        if ack.get("status") != STATUS_OK or not ack.get("draining"):
            report.violations.append(
                f"shutdown ack is not a draining ok: {ack}"
            )
    # By the time the acknowledgement is readable, `_draining` is set:
    # this straggler must draw the typed refusal.
    straggler_writer.write(
        (
            json.dumps(
                {
                    "id": "drain_late",
                    "op": "predict",
                    "mtx": _random_matrix_text(10_000, seed),
                }
            )
            + "\n"
        ).encode()
    )
    await straggler_writer.drain()
    raw = await bounded_readline(straggler_reader, "drain_late")
    if raw:
        late = json.loads(raw)
        report.n_responses += 1
        report.by_status[late.get("status")] += 1
        if late.get("code"):
            report.by_code[late["code"]] += 1
        if (
            late.get("status") != STATUS_OVERLOADED
            or late.get("code") != "draining"
        ):
            report.violations.append(
                f"drain_late: drew {late} instead of a typed "
                f"draining refusal"
            )
    for c, (reader, writer) in enumerate(conns):
        raw = await bounded_readline(reader, f"drain{c}")
        if raw is None:
            continue
        if not raw:
            report.violations.append(
                f"drain{c}: connection closed with the request in flight"
            )
            continue
        response = json.loads(raw)
        report.n_responses += 1
        report.by_status[response.get("status")] += 1
        if response.get("status") not in STATUSES:
            report.violations.append(
                f"drain{c}: unknown status in {response}"
            )
        if response.get("id") != f"drain{c}":
            report.violations.append(
                f"drain{c}: answered with id {response.get('id')!r}"
            )
        writer.close()
    straggler_writer.close()
    ctl_writer.close()
    return report
