"""Circuit breaker around frozen-model inference.

Classic three-state breaker (closed → open → half-open):

- **closed** — requests flow to the model; ``failure_threshold``
  *consecutive* inference faults trip the breaker open.  Any success
  resets the consecutive count.
- **open** — the model is not called at all; every request is answered
  by the CSR fallback with reason ``breaker_open``.  After
  ``reset_timeout`` seconds the breaker moves to half-open.
- **half-open** — requests are let through as probes.  ``probe_successes``
  consecutive probe successes close the breaker; a single probe failure
  re-opens it (and restarts the timeout).

Why a breaker at all, when :class:`~repro.core.deploy.FallbackSelector`
already degrades per call?  Because a model that faults on *every* call
(corrupt arrays, a poisoned reload that slipped through) would still pay
the full transform cost per request before degrading — the breaker turns
a persistent fault into a constant-time fallback and gives the model an
explicit, observable recovery protocol.

The clock is injectable so the state machine is testable without sleeps.
All transitions are counted through ``TELEMETRY``
(``serving.breaker.opened`` / ``reopened`` / ``closed``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs import TELEMETRY

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        probe_successes: int = 2,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        if probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probe_successes = probe_successes
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_streak = 0
        self._opened_at = 0.0
        self._open_seconds = 0.0
        self.n_opens = 0
        self.n_closes = 0

    # -- state -------------------------------------------------------------

    def _advance(self) -> None:
        """Open → half-open once the reset timeout has elapsed."""
        if (
            self._state == OPEN
            and self.clock() - self._opened_at >= self.reset_timeout
        ):
            self._open_seconds += self.clock() - self._opened_at
            self._state = HALF_OPEN
            self._probe_streak = 0

    @property
    def open_seconds(self) -> float:
        """Cumulative seconds spent fully open (the SLO input)."""
        with self._lock:
            total = self._open_seconds
            if self._state == OPEN:
                total += self.clock() - self._opened_at
            return total

    @property
    def state(self) -> str:
        with self._lock:
            self._advance()
            return self._state

    def allow(self) -> bool:
        """Whether the next inference may reach the model."""
        with self._lock:
            self._advance()
            return self._state != OPEN

    # -- outcomes ----------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._advance()
            if self._state == HALF_OPEN:
                self._probe_streak += 1
                if self._probe_streak >= self.probe_successes:
                    self._state = CLOSED
                    self._consecutive_failures = 0
                    self._probe_streak = 0
                    self.n_closes += 1
                    TELEMETRY.inc("serving.breaker.closed")
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._advance()
            if self._state == HALF_OPEN:
                # A failed probe slams the breaker shut again.
                self._state = OPEN
                self._opened_at = self.clock()
                self._probe_streak = 0
                self.n_opens += 1
                TELEMETRY.inc("serving.breaker.reopened")
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self.clock()
                self.n_opens += 1
                TELEMETRY.inc("serving.breaker.opened")

    def snapshot(self) -> dict:
        """State summary for health probes."""
        with self._lock:
            self._advance()
            open_seconds = self._open_seconds
            if self._state == OPEN:
                open_seconds += self.clock() - self._opened_at
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.n_opens,
                "closes": self.n_closes,
                "open_seconds": round(open_seconds, 6),
            }
