"""Hot model reload: watch, shadow-validate, atomically swap, quarantine.

The serving loop must pick up retrained models without a restart, and a
bad artifact must never serve a single request.  The guarantee comes
from ordering, mirroring DESIGN §8's survivor-byte-identity argument:

1. **Watch** — before requests, the host stats the ``.npz`` path.  Only
   an (mtime, size) change triggers a SHA-256 hash; only a *new* digest
   triggers validation, so the steady-state cost is one ``stat``.
2. **Shadow-validate** — the candidate is loaded through the strict
   :meth:`FrozenSelector.load` (structural validation) and then asked to
   predict a small *golden* matrix set end to end.  All of this happens
   on a local variable while the old model keeps serving.
3. **Atomic swap** — only a fully validated candidate is published, by a
   single attribute assignment (atomic under the GIL).  A request
   handler reads the reference once, so every request is answered
   entirely by one model — never a mix.
4. **Quarantine** — a candidate that fails validation is remembered by
   digest and never retried (until a different digest appears), so a
   corrupt artifact cannot flap the server with repeated load attempts.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.deploy import FrozenSelector, ModelFormatError
from repro.features import extract_features
from repro.formats.coo import COOMatrix
from repro.obs import TELEMETRY

#: Events check_reload() can report.
RELOAD_SWAPPED = "swapped"
RELOAD_QUARANTINED = "quarantined"
RELOAD_UNCHANGED = "unchanged"


def golden_features() -> np.ndarray:
    """Feature rows of the built-in golden matrix set.

    Three tiny, structurally distinct matrices (diagonal, tridiagonal,
    dense block) that exercise the full transform → assign → label path
    of a candidate model.  Deterministic by construction — no RNG — so
    validation verdicts are reproducible.
    """
    idx = np.arange(8)
    diagonal = COOMatrix((8, 8), idx, idx, np.ones(8))
    main = np.arange(16)
    off = np.arange(15)
    tri = COOMatrix(
        (16, 16),
        np.concatenate([main, off, off + 1]),
        np.concatenate([main, off + 1, off]),
        np.concatenate([2.0 * np.ones(16), -np.ones(15), -np.ones(15)]),
    )
    r, c = np.divmod(np.arange(24), 6)
    block = COOMatrix((4, 6), r, c, 1.0 + np.arange(24, dtype=float))
    return np.vstack(
        [extract_features(m) for m in (diagonal, tri, block)]
    )


class ValidationFailure(Exception):
    """A candidate model that must not be swapped in."""


@dataclass
class ModelVersion:
    """One immutable published model: selector + provenance."""

    selector: FrozenSelector | None
    sha256: str | None
    stat: tuple[int, int] | None  # (mtime_ns, size)
    loaded_at: float
    error: str | None = None
    #: Cached OOD length scale of this version's centroid cloud.
    scale: float = float("inf")


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _stat_fingerprint(path: str) -> tuple[int, int] | None:
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


class ModelHost:
    """Hot-reloadable holder of the frozen selector.

    ``active`` is the single source of truth; request handlers must read
    it once per request and use that local reference throughout, which
    is what makes the swap atomic from their perspective.
    """

    def __init__(
        self,
        path: str,
        golden: np.ndarray | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = str(path)
        self.golden = golden_features() if golden is None else golden
        self.clock = clock
        self.quarantine: dict[str, str] = {}
        #: Fingerprint of the last path content we examined (good or
        #: bad), so an unchanged quarantined file costs one stat, not a
        #: hash + failed validation per request.
        self._seen_stat: tuple[int, int] | None = None
        self.n_reloads = 0
        self.n_quarantined = 0
        self.active = self._initial_load()

    # -- loading -----------------------------------------------------------

    def _initial_load(self) -> ModelVersion:
        stat = _stat_fingerprint(self.path)
        self._seen_stat = stat
        if stat is None:
            return ModelVersion(
                selector=None,
                sha256=None,
                stat=None,
                loaded_at=self.clock(),
                error=f"model file {self.path!r} does not exist",
            )
        sha = _sha256(self.path)
        try:
            return self._validate(sha, stat)
        except ValidationFailure as exc:
            self.quarantine[sha] = str(exc)
            self.n_quarantined += 1
            TELEMETRY.inc("serving.reload.quarantined")
            return ModelVersion(
                selector=None,
                sha256=sha,
                stat=stat,
                loaded_at=self.clock(),
                error=str(exc),
            )

    def _validate(self, sha: str, stat: tuple[int, int]) -> ModelVersion:
        """Shadow-validate the artifact at ``self.path``.

        Returns a publishable :class:`ModelVersion`; raises
        :class:`ValidationFailure` otherwise.  Runs entirely on locals —
        the active model is untouched until the caller swaps.
        """
        try:
            selector = FrozenSelector.load(self.path)
        except (ModelFormatError, FileNotFoundError, ValueError) as exc:
            raise ValidationFailure(f"load failed: {exc}") from exc
        except Exception as exc:  # pragma: no cover - defensive
            raise ValidationFailure(
                f"unexpected load error: {type(exc).__name__}: {exc}"
            ) from exc
        if self.golden is not None and len(self.golden):
            try:
                labels = selector.predict(self.golden)
                distances = selector.nearest_distance(self.golden)
            except Exception as exc:
                raise ValidationFailure(
                    f"golden-set inference failed: {exc}"
                ) from exc
            if not np.all(np.isfinite(distances)):
                raise ValidationFailure(
                    "golden-set inference produced non-finite distances"
                )
            for label in labels:
                if not isinstance(label, str) or not label:
                    raise ValidationFailure(
                        f"golden-set inference produced bad label {label!r}"
                    )
        return ModelVersion(
            selector=selector,
            sha256=sha,
            stat=stat,
            loaded_at=self.clock(),
            scale=selector.centroid_scale(),
        )

    # -- the watch loop ----------------------------------------------------

    def check_reload(self) -> str:
        """Stat the path; validate and swap if its content changed.

        Returns one of :data:`RELOAD_SWAPPED`,
        :data:`RELOAD_QUARANTINED`, :data:`RELOAD_UNCHANGED`.  Never
        raises, never unpublishes a working model: a deleted or corrupt
        file leaves the old model serving.
        """
        stat = _stat_fingerprint(self.path)
        if stat is None or stat == self._seen_stat:
            return RELOAD_UNCHANGED
        self._seen_stat = stat
        sha = _sha256(self.path)
        if sha == self.active.sha256:
            # Content identical (e.g. touch, or copy of the same file).
            return RELOAD_UNCHANGED
        if sha in self.quarantine:
            return RELOAD_QUARANTINED
        try:
            candidate = self._validate(sha, stat)
        except ValidationFailure as exc:
            self.quarantine[sha] = str(exc)
            self.n_quarantined += 1
            TELEMETRY.inc("serving.reload.quarantined")
            return RELOAD_QUARANTINED
        # The swap: one reference assignment, atomic under the GIL.
        self.active = candidate
        self.n_reloads += 1
        TELEMETRY.inc("serving.reload.swapped")
        return RELOAD_SWAPPED

    # -- summaries ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self.active.selector is None

    def snapshot(self) -> dict:
        active = self.active
        return {
            "path": self.path,
            "sha256": active.sha256,
            "degraded": active.selector is None,
            "error": active.error,
            "n_centroids": (
                active.selector.n_centroids
                if active.selector is not None
                else 0
            ),
            "reloads": self.n_reloads,
            "quarantined": self.n_quarantined,
        }
