"""Wire protocol of the resilient selector service.

One JSON object per line in both directions (JSONL), over stdin/stdout
or a Unix socket.  Requests::

    {"id": "r1", "op": "predict", "mtx": "%%MatrixMarket ..."}
    {"id": "r2", "op": "predict", "path": "/data/matrix.mtx"}
    {"id": "r3", "op": "feedback", "mtx": "...", "best_format": "ell"}
    {"id": "r4", "op": "health"}
    {"id": "r5", "op": "reload"}

``op`` defaults to ``predict``.  A request may carry a ``deadline_ms``
field: the client's remaining latency budget in milliseconds at send
time.  The tier front-end min-combines it with its own
``--request-timeout`` and forwards the *remaining* budget to the worker,
whose admission queue and predict path both honor it — a request whose
budget ran out is answered ``overloaded``/``deadline_exceeded`` without
burning inference time.  Every request — including ones the server
sheds or rejects — receives exactly one response whose ``status`` is
one of:

- ``ok`` — the model answered; ``format`` holds the recommendation.
- ``invalid`` — the request itself is unusable; ``code`` says why
  (``bad_json``, ``payload_too_large``, ``nonfinite_value``, ...).
- ``overloaded`` — admission control shed the request (``queue_full``),
  its deadline expired before processing (``deadline_exceeded``), or the
  server is draining for shutdown and no longer accepts new work
  (``draining``).
- ``fallback`` — the input was fine but the model could not be trusted;
  ``format`` still carries a safe recommendation and ``reason`` says why
  (``breaker_open``, ``out_of_distribution``, ``model_unusable``,
  ``inference_error``, ``internal_error``).

Responses are serialised with sorted keys and no whitespace so the same
logical answer is byte-identical across runs — the property the
serve-vs-predict parity drill asserts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

# -- statuses ---------------------------------------------------------------

STATUS_OK = "ok"
STATUS_INVALID = "invalid"
STATUS_OVERLOADED = "overloaded"
STATUS_FALLBACK = "fallback"

#: Every status a response may carry (the drill asserts membership).
STATUSES = (STATUS_OK, STATUS_INVALID, STATUS_OVERLOADED, STATUS_FALLBACK)

# -- invalid-request codes --------------------------------------------------

CODE_BAD_JSON = "bad_json"
CODE_NOT_OBJECT = "not_object"
CODE_UNKNOWN_OP = "unknown_op"
CODE_MISSING_FIELD = "missing_field"
CODE_PAYLOAD_TOO_LARGE = "payload_too_large"
CODE_BAD_FEATURES = "bad_features"

# -- overload codes ---------------------------------------------------------

CODE_QUEUE_FULL = "queue_full"
CODE_DEADLINE = "deadline_exceeded"
#: The server is draining for graceful shutdown: in-flight requests
#: finish, new ones are answered with this typed refusal (never dropped).
CODE_DRAINING = "draining"

# -- tier codes -------------------------------------------------------------

#: A non-predict request was in flight on a worker that died; the tier
#: front-end answers it with this ``invalid`` code instead of hanging.
CODE_WORKER_LOST = "worker_lost"
#: The worker never answered within the front-end's patience budget.
CODE_WORKER_TIMEOUT = "worker_timeout"

# -- fallback reasons -------------------------------------------------------

REASON_BREAKER_OPEN = "breaker_open"
REASON_OUT_OF_DISTRIBUTION = "out_of_distribution"
REASON_MODEL_UNUSABLE = "model_unusable"
REASON_INFERENCE_ERROR = "inference_error"
REASON_INTERNAL_ERROR = "internal_error"
#: A predict/feedback request was in flight on a worker that died; the
#: tier front-end still answers with a safe format recommendation.
REASON_WORKER_LOST = "worker_lost"

#: Ops the server understands.  ``metrics`` returns a live registry
#: snapshot with latency quantiles; ``healthz`` is the cheap liveness
#: probe (state + SLO summary) meant for scrapers and load balancers.
KNOWN_OPS = (
    "predict", "feedback", "health", "healthz", "metrics", "reload",
    "shutdown",
)


@dataclass
class Request:
    """One admitted request, annotated by the admission controller."""

    id: str | None
    op: str
    body: dict
    #: Arrival timestamp on the server clock (set at admission).
    arrival: float = 0.0
    #: Absolute processing deadline (``None`` = no deadline).
    deadline: float | None = None
    #: Client/front-end latency budget remaining at send time, in
    #: milliseconds (the wire ``deadline_ms`` field); admission
    #: min-combines it with the configured deadline.
    budget_ms: float | None = None
    #: Pre-built response for requests rejected at parse time; the
    #: processing loop emits it verbatim instead of dispatching.
    rejection: dict | None = field(default=None, repr=False)


class RequestParseError(Exception):
    """A line that never became a request; carries the error response."""

    def __init__(self, response: dict) -> None:
        super().__init__(response.get("error", "unparseable request"))
        self.response = response


def invalid_response(
    code: str, error: str, request_id: str | None = None
) -> dict:
    return {
        "id": request_id,
        "status": STATUS_INVALID,
        "code": code,
        "error": error,
    }


def overloaded_response(code: str, request_id: str | None = None) -> dict:
    return {"id": request_id, "status": STATUS_OVERLOADED, "code": code}


def fallback_response(
    fmt: str, reason: str, request_id: str | None = None, **extra
) -> dict:
    resp = {
        "id": request_id,
        "status": STATUS_FALLBACK,
        "format": fmt,
        "reason": reason,
    }
    resp.update(extra)
    return resp


def ok_response(request_id: str | None = None, **fields) -> dict:
    resp = {"id": request_id, "status": STATUS_OK}
    resp.update(fields)
    return resp


def parse_request_line(line: str, max_bytes: int | None = None) -> Request:
    """Parse one JSONL request line into a :class:`Request`.

    Raises :class:`RequestParseError` carrying the ready-to-send
    ``invalid`` response; the ingestion path never lets a hostile line
    escalate beyond that.
    """
    if max_bytes is not None and len(line) > max_bytes:
        raise RequestParseError(
            invalid_response(
                CODE_PAYLOAD_TOO_LARGE,
                f"request line of {len(line)} bytes exceeds the "
                f"{max_bytes}-byte limit",
            )
        )
    try:
        obj = json.loads(line)
    except (ValueError, TypeError) as exc:
        raise RequestParseError(
            invalid_response(CODE_BAD_JSON, f"unparseable JSON: {exc}")
        ) from exc
    if not isinstance(obj, dict):
        raise RequestParseError(
            invalid_response(
                CODE_NOT_OBJECT,
                f"request must be a JSON object, got {type(obj).__name__}",
            )
        )
    raw_id = obj.get("id")
    request_id = None if raw_id is None else str(raw_id)
    op = str(obj.get("op", "predict")).lower()
    if op not in KNOWN_OPS:
        raise RequestParseError(
            invalid_response(
                CODE_UNKNOWN_OP,
                f"unknown op {op!r}; known: {list(KNOWN_OPS)}",
                request_id,
            )
        )
    # Hostile-input tolerance: a non-numeric/non-finite deadline_ms is
    # ignored rather than rejected (the request is otherwise fine).  A
    # numeric budget <= 0 is kept — admission expires it immediately,
    # which is exactly what an already-out-of-budget client deserves.
    raw_budget = obj.get("deadline_ms")
    budget_ms = None
    if isinstance(raw_budget, (int, float)) and not isinstance(
        raw_budget, bool
    ):
        value = float(raw_budget)
        if math.isfinite(value):
            budget_ms = value
    return Request(id=request_id, op=op, body=obj, budget_ms=budget_ms)


def encode_response(response: dict) -> str:
    """Deterministic single-line encoding (sorted keys, no whitespace)."""
    return json.dumps(
        response, sort_keys=True, separators=(",", ":"), default=str
    )
