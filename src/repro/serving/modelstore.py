"""Shared read-only model store: one mmap'd frozen model, N workers.

The single-process server loads its ``.npz`` with
:meth:`~repro.core.deploy.FrozenSelector.load` — a full read, parse, and
structural validation.  Repeating that per worker would cost N
deserializations and N private copies of every array.  The tier instead
splits publication from attachment:

- **Publish (front-end, once per version)** — the front-end's
  :class:`~repro.serving.reload.ModelHost` has already shadow-validated
  the candidate; :meth:`ModelStore.publish` writes each of its arrays as
  a raw ``.npy`` file under ``versions/<sha256>/`` (content-addressed,
  staged + atomically renamed) plus a small JSON manifest, then flips
  the ``CURRENT`` pointer file with one atomic rename.  That rename *is*
  the tier-wide model swap: every worker observes it on its next
  request, and no worker can observe half a version.
- **Attach (worker, per version)** — :meth:`ModelStore.attach` opens the
  arrays with ``np.load(..., mmap_mode="r")``: no deserialization, no
  validation (the publisher did it once), no private copy.  All workers
  map the same pages, so the model occupies page cache once regardless
  of worker count — the property ``tests/serving/test_modelstore.py``
  asserts, along with the absence of any load-time telemetry span on
  the attach path.

:class:`StoreModelHost` adapts the store to the
:class:`~repro.serving.reload.ModelHost` surface the request loop uses
(``active`` / ``check_reload()`` / ``snapshot()``), so
:class:`~repro.serving.server.SelectorServer` runs unchanged inside a
worker.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from typing import Callable

import numpy as np

from repro.core.deploy import FrozenSelector
from repro.obs import TELEMETRY
from repro.serving.reload import (
    ModelVersion,
    RELOAD_QUARANTINED,
    RELOAD_SWAPPED,
    RELOAD_UNCHANGED,
)

_MANIFEST = "manifest.json"
_CURRENT = "CURRENT"
#: Publish-order journal (one sha per line, oldest first).  It is both
#: the GC grace list — the last ``keep`` entries are never pruned, so a
#: worker mid-attach on a version published moments ago cannot lose the
#: files under its mmap — and the fall-back chain a worker walks when
#: the CURRENT version fails its integrity check.
_JOURNAL = "PUBLISHED"

#: FrozenSelector array fields persisted as raw ``.npy`` files.  The
#: optional ones (``None`` in the selector) are simply absent from the
#: version directory; the manifest records which were written.
_ARRAY_FIELDS = (
    "transform_shift",
    "transform_apply",
    "scaler_min",
    "scaler_span",
    "pca_mean",
    "pca_components",
    "centroids",
    "centroid_labels",
)


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ModelStoreError(RuntimeError):
    """A store version that cannot be published or attached."""


class ModelStore:
    """Content-addressed, mmap-attachable store of frozen selectors."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(os.path.join(self.root, "versions"), exist_ok=True)

    # -- paths --------------------------------------------------------------

    def version_dir(self, sha: str) -> str:
        return os.path.join(self.root, "versions", sha)

    @property
    def current_path(self) -> str:
        return os.path.join(self.root, _CURRENT)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, _JOURNAL)

    # -- publish-order journal ------------------------------------------------

    def publish_order(self) -> list[str]:
        """Published shas, oldest first (re-publish moves a sha to the end)."""
        try:
            with open(self.journal_path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            return []
        return [sha.strip() for sha in lines if sha.strip()]

    def _write_journal(self, order: list[str]) -> None:
        fd, tmp = tempfile.mkstemp(prefix=".journal-", dir=self.root)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write("".join(sha + "\n" for sha in order))
            os.replace(tmp, self.journal_path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - defensive
                os.unlink(tmp)

    def _journal_append(self, sha: str) -> None:
        order = [s for s in self.publish_order() if s != sha]
        order.append(sha)
        self._write_journal(order)

    # -- publish (front-end side) -------------------------------------------

    def publish(self, selector: FrozenSelector, sha: str) -> str:
        """Write ``selector`` under ``versions/<sha>`` and flip CURRENT.

        The caller has already validated the selector (the front-end
        publishes only what its :class:`ModelHost` swapped in).  Writing
        is staged into a sibling temp directory and renamed into place,
        so a concurrent attach sees either the whole version or none of
        it; publishing a sha that already exists only flips the pointer.
        """
        target = self.version_dir(sha)
        if not os.path.isdir(target):
            staging = tempfile.mkdtemp(
                prefix=f".stage-{sha[:12]}-",
                dir=os.path.join(self.root, "versions"),
            )
            try:
                arrays = []
                digests = {}
                for name in _ARRAY_FIELDS:
                    value = getattr(selector, name)
                    if value is None:
                        continue
                    if name == "centroid_labels":
                        value = np.asarray(value).astype("U8")
                    path = os.path.join(staging, f"{name}.npy")
                    np.save(path, np.ascontiguousarray(value))
                    digests[name] = _file_sha256(path)
                    arrays.append(name)
                manifest = {
                    "sha256": sha,
                    "arrays": arrays,
                    # Per-array content digests: attach verifies them
                    # once, so a truncated or bit-flipped .npy is
                    # quarantined instead of served through mmap.
                    "digests": digests,
                    "transform_kind": selector.transform_kind,
                    "n_centroids": selector.n_centroids,
                }
                with open(
                    os.path.join(staging, _MANIFEST), "w", encoding="utf-8"
                ) as fh:
                    json.dump(manifest, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                try:
                    os.replace(staging, target)
                except OSError:
                    # A concurrent publisher won the rename; theirs is
                    # byte-equivalent (content-addressed), use it.
                    if not os.path.isdir(target):
                        raise
            finally:
                if os.path.isdir(staging) and staging != target:
                    for leftover in os.listdir(staging):
                        os.unlink(os.path.join(staging, leftover))
                    os.rmdir(staging)
            TELEMETRY.inc("serving.store.published")
        self._journal_append(sha)
        self.set_current(sha)
        return target

    def prune(self, keep: int = 2) -> list[str]:
        """Delete version directories beyond the ``keep`` most recent.

        Runs after a successful pointer flip.  CURRENT and the last
        ``keep`` journal entries are always retained (the publish-order
        grace list: an attach races the flip by at most one version, so
        a version published within the last ``keep`` flips may still be
        mid-attach somewhere and must keep its files).  Version
        directories the journal has never seen (pre-journal stores) are
        treated as oldest.  Returns the pruned shas; ``keep < 1`` is a
        no-op so a misconfigured knob can never empty the store.
        """
        if keep < 1:
            return []
        order = self.publish_order()
        versions_root = os.path.join(self.root, "versions")
        try:
            on_disk = [
                d for d in sorted(os.listdir(versions_root))
                if not d.startswith(".")
                and os.path.isdir(os.path.join(versions_root, d))
            ]
        except OSError:  # pragma: no cover - defensive
            on_disk = []
        untracked = [d for d in on_disk if d not in order]
        candidates = untracked + order
        grace = set(order[-keep:])
        current = self.current_sha()
        if current is not None:
            grace.add(current)
        pruned: list[str] = []
        for sha in candidates:
            if sha in grace or sha not in on_disk:
                continue
            shutil.rmtree(self.version_dir(sha), ignore_errors=True)
            pruned.append(sha)
        if pruned:
            kept = [s for s in order if s not in pruned]
            self._write_journal(kept)
            TELEMETRY.inc("serving.store.pruned", len(pruned))
        return pruned

    def set_current(self, sha: str) -> None:
        """Atomically repoint CURRENT at ``sha`` — the tier-wide flip."""
        fd, tmp = tempfile.mkstemp(prefix=".current-", dir=self.root)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(sha + "\n")
            os.replace(tmp, self.current_path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - defensive
                os.unlink(tmp)
        TELEMETRY.inc("serving.store.flipped")

    # -- attach (worker side) -----------------------------------------------

    def current_sha(self) -> str | None:
        try:
            with open(self.current_path, "r", encoding="utf-8") as fh:
                sha = fh.read().strip()
        except OSError:
            return None
        return sha or None

    def current_stat(self) -> tuple[int, int] | None:
        """(mtime_ns, size) of the pointer file — the cheap watch probe."""
        try:
            st = os.stat(self.current_path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def attach(self, sha: str) -> FrozenSelector:
        """Map ``versions/<sha>`` read-only into this process.

        No deserialization and no model validation happen here — arrays
        are ``np.memmap`` views of the published files, shared
        page-cache with every other attached worker.  The one check is
        *integrity*: each file's SHA-256 must match the digest the
        publisher recorded in the manifest, so a truncated or
        bit-flipped ``.npy`` raises instead of serving garbage through
        mmap (manifests without digests — pre-integrity stores — skip
        the check).  Raises :class:`ModelStoreError` if the version is
        missing, torn, or fails its digest.
        """
        vdir = self.version_dir(sha)
        manifest_path = os.path.join(vdir, _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ModelStoreError(
                f"store version {sha} is missing or torn: {exc}"
            ) from exc
        arrays: dict[str, np.ndarray | None] = {
            name: None for name in _ARRAY_FIELDS
        }
        digests = manifest.get("digests")
        for name in manifest.get("arrays", []):
            if name not in arrays:
                raise ModelStoreError(
                    f"store version {sha} names unknown array {name!r}"
                )
            path = os.path.join(vdir, f"{name}.npy")
            if isinstance(digests, dict) and name in digests:
                try:
                    actual = _file_sha256(path)
                except OSError as exc:
                    raise ModelStoreError(
                        f"store version {sha}: cannot read {name}: {exc}"
                    ) from exc
                if actual != digests[name]:
                    raise ModelStoreError(
                        f"store version {sha}: integrity failure on "
                        f"{name}: digest {actual[:12]} != published "
                        f"{str(digests[name])[:12]}"
                    )
            try:
                arrays[name] = np.load(
                    path,
                    mmap_mode="r",
                    allow_pickle=False,
                )
            except (OSError, ValueError) as exc:
                raise ModelStoreError(
                    f"store version {sha}: cannot map {name}: {exc}"
                ) from exc
        if arrays["centroids"] is None or arrays["centroid_labels"] is None:
            raise ModelStoreError(
                f"store version {sha} lacks a centroid table"
            )
        transform_apply = arrays["transform_apply"]
        labels = arrays["centroid_labels"]
        try:
            selector = FrozenSelector(
                transform_kind=manifest.get("transform_kind"),
                transform_shift=arrays["transform_shift"],
                transform_apply=(
                    np.asarray(transform_apply).astype(bool)
                    if transform_apply is not None
                    else None
                ),
                scaler_min=arrays["scaler_min"],
                scaler_span=arrays["scaler_span"],
                pca_mean=arrays["pca_mean"],
                pca_components=arrays["pca_components"],
                centroids=arrays["centroids"],
                centroid_labels=np.asarray(labels).astype(object),
            )
        except ValueError as exc:
            raise ModelStoreError(
                f"store version {sha} is structurally inconsistent: {exc}"
            ) from exc
        TELEMETRY.inc("serving.store.attached")
        return selector


class StoreModelHost:
    """Worker-side model host reading versions from a :class:`ModelStore`.

    Mirrors the :class:`~repro.serving.reload.ModelHost` surface that
    :class:`~repro.serving.server.SelectorServer` consumes, but the
    watch target is the store's CURRENT pointer, the "load" is an mmap
    attach, and there is no validation pass — the front-end
    shadow-validates once for the whole tier before it flips the
    pointer (DESIGN §14).
    """

    def __init__(
        self,
        store: ModelStore | str,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store if isinstance(store, ModelStore) else ModelStore(store)
        self.path = self.store.root
        self.clock = clock
        self.n_reloads = 0
        #: Attach failures — store corruption, not model badness, but the
        #: snapshot keys stay aligned with ModelHost's so tier health
        #: aggregation reads both kinds of worker identically.
        self.n_quarantined = 0
        #: Times a corrupt CURRENT was bridged by re-attaching the
        #: previous published version instead of serving degraded.
        self.n_fallbacks = 0
        self._seen_stat = self.store.current_stat()
        self.active = self._attach_current()

    def _attach_current(self) -> ModelVersion:
        sha = self.store.current_sha()
        if sha is None:
            return ModelVersion(
                selector=None,
                sha256=None,
                stat=None,
                loaded_at=self.clock(),
                error=f"model store {self.store.root!r} has no published "
                      f"model",
            )
        try:
            selector = self.store.attach(sha)
        except ModelStoreError as exc:
            self.n_quarantined += 1
            TELEMETRY.inc("serving.store.attach_failed")
            fallback = self._attach_previous(sha)
            if fallback is not None:
                return fallback
            return ModelVersion(
                selector=None,
                sha256=sha,
                stat=self._seen_stat,
                loaded_at=self.clock(),
                error=str(exc),
            )
        return ModelVersion(
            selector=selector,
            sha256=sha,
            stat=self._seen_stat,
            loaded_at=self.clock(),
            scale=selector.centroid_scale(),
        )

    def _attach_previous(self, bad_sha: str) -> ModelVersion | None:
        """Walk the publish journal backwards past a corrupt CURRENT.

        A version that fails its integrity check is quarantined in
        place; rather than serve degraded (fallback-format answers), the
        worker attaches the newest *older* published version that still
        verifies — the model every worker was serving before the bad
        flip.  Returns ``None`` when no earlier version survives.
        """
        for sha in reversed(self.store.publish_order()):
            if sha == bad_sha:
                continue
            try:
                selector = self.store.attach(sha)
            except ModelStoreError:
                continue
            self.n_fallbacks += 1
            TELEMETRY.inc("serving.store.fallback")
            return ModelVersion(
                selector=selector,
                sha256=sha,
                stat=self._seen_stat,
                loaded_at=self.clock(),
                scale=selector.centroid_scale(),
            )
        return None

    def check_reload(self) -> str:
        """Stat the CURRENT pointer; re-attach when it moved.

        One ``stat`` in the steady state — the same watch cost as the
        single-process host — and never unpublishes a working model: a
        torn or vanished pointer leaves the old attachment serving.
        """
        stat = self.store.current_stat()
        if stat is None or stat == self._seen_stat:
            return RELOAD_UNCHANGED
        self._seen_stat = stat
        sha = self.store.current_sha()
        if sha is None or sha == self.active.sha256:
            return RELOAD_UNCHANGED
        candidate = self._attach_current()
        if candidate.selector is None:
            return RELOAD_QUARANTINED
        if candidate.sha256 != sha:
            # The flipped-to version failed integrity and the journal
            # fallback bridged to an older one: that is a quarantine,
            # not a swap.  Adopt the fallback only if it differs from
            # what is already serving.
            if candidate.sha256 != self.active.sha256:
                self.active = candidate
            return RELOAD_QUARANTINED
        self.active = candidate
        self.n_reloads += 1
        TELEMETRY.inc("serving.reload.swapped")
        return RELOAD_SWAPPED

    @property
    def degraded(self) -> bool:
        return self.active.selector is None

    def snapshot(self) -> dict:
        active = self.active
        return {
            "path": self.path,
            "sha256": active.sha256,
            "degraded": active.selector is None,
            "error": active.error,
            "n_centroids": (
                active.selector.n_centroids
                if active.selector is not None
                else 0
            ),
            "reloads": self.n_reloads,
            "quarantined": self.n_quarantined,
            "fallbacks": self.n_fallbacks,
        }


__all__ = ["ModelStore", "ModelStoreError", "StoreModelHost"]
