"""Admission control: bounded queue, deadlines, shed-oldest load shedding.

Latency under burst traffic is bounded by two rules:

- **The queue is bounded.**  When an arriving request would push the
  backlog past ``max_pending``, the *oldest* queued request is shed with
  an ``overloaded``/``queue_full`` response.  Shedding oldest (not
  newest) is deliberate: the oldest request has burned the most of its
  deadline already and is the least likely to still be useful, while the
  newest represents a client that just showed up and deserves the
  freshest answer.
- **Every request has a deadline.**  A request dequeued after
  ``arrival + deadline_seconds`` is answered
  ``overloaded``/``deadline_exceeded`` without any work — a client that
  has already timed out must not consume inference capacity.

The controller is a pure data structure over an injectable clock, so the
state machine is testable without threads or sleeps; the server wires it
between its reader and its processing loop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from repro.obs import TELEMETRY
from repro.serving.protocol import Request


class AdmissionController:
    """Bounded FIFO with per-request deadlines and shed-oldest overflow."""

    def __init__(
        self,
        max_pending: int = 64,
        deadline_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self.max_pending = max_pending
        self.deadline_seconds = deadline_seconds
        self.clock = clock
        self._queue: deque[Request] = deque()
        self._lock = threading.Lock()
        self.n_admitted = 0
        self.n_shed = 0
        self.n_expired = 0

    # -- producer side -----------------------------------------------------

    def offer(self, request: Request) -> list[Request]:
        """Admit ``request``; returns the requests shed to make room.

        The effective deadline is the *tighter* of the configured
        per-request deadline and the client/front-end budget propagated
        on the wire (``deadline_ms``, already decremented for upstream
        time spent) — a client that will give up in 50ms must not hold
        a 5s claim on the queue.
        """
        now = self.clock()
        request.arrival = now
        budgets = []
        if self.deadline_seconds is not None:
            budgets.append(self.deadline_seconds)
        if request.budget_ms is not None:
            budgets.append(request.budget_ms / 1000.0)
        if budgets:
            request.deadline = now + min(budgets)
        shed: list[Request] = []
        with self._lock:
            while len(self._queue) >= self.max_pending:
                shed.append(self._queue.popleft())
            self._queue.append(request)
            self.n_admitted += 1
            self.n_shed += len(shed)
        if shed:
            TELEMETRY.inc("serving.shed", len(shed))
        TELEMETRY.inc("serving.admitted")
        return shed

    # -- consumer side -----------------------------------------------------

    def take(self) -> tuple[Request | None, list[Request]]:
        """Next live request plus any requests found dead past deadline."""
        now = self.clock()
        expired: list[Request] = []
        with self._lock:
            while self._queue:
                request = self._queue.popleft()
                if request.deadline is not None and now > request.deadline:
                    expired.append(request)
                    self.n_expired += 1
                    continue
                if expired:
                    TELEMETRY.inc("serving.deadline_expired", len(expired))
                    TELEMETRY.inc("serving.deadline_exceeded", len(expired))
                return request, expired
        if expired:
            TELEMETRY.inc("serving.deadline_expired", len(expired))
            TELEMETRY.inc("serving.deadline_exceeded", len(expired))
        return None, expired

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._queue)
