"""Asyncio front-end of the horizontally scaled serving tier.

``repro serve --workers N`` (N >= 2) no longer answers requests in the
accepting process.  This module runs the **front-end**: an asyncio JSONL
server that parses each incoming line just enough to type it, then

- answers protocol-level rejections itself (same
  :func:`~repro.serving.protocol.parse_request_line` as a worker, so the
  typed error bytes are identical),
- routes ``predict``/``feedback`` to one of N worker *processes* over a
  consistent-hash ring keyed on the client identity
  (:mod:`repro.serving.routing`), so per-client admission and breaker
  state stay local to one worker,
- aggregates the tier-wide ops (``metrics``/``healthz``/``health``
  merge every worker's answer via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`;
  ``reload`` shadow-validates once and flips all workers atomically
  through the shared :class:`~repro.serving.modelstore.ModelStore`).

Each worker is a ``repro serve`` subprocess running the unchanged
PR-4/PR-7 :class:`~repro.serving.server.SelectorServer` over its own
Unix socket, attached read-only to the shared mmap model store.  The
front-end holds one multiplexed connection per worker; because a worker
answers strictly in order, responses are matched FIFO against the
in-flight queue.  When a worker dies, every request in flight on it
receives a *typed* error response immediately (``fallback`` with reason
``worker_lost`` for predict/feedback, ``invalid`` with code
``worker_lost`` otherwise) — never a hang — and the worker is respawned
under its old ring name, so key movement is bounded to exactly the keys
it owned.  A queue-depth autoscale loop spawns/retires workers within
``--workers-min``/``--workers-max``.

On top of routing, the front-end runs the tail-latency resilience layer
(DESIGN §15):

- **Deadline propagation** — each routed request carries a remaining
  latency budget (``deadline_ms``, the client's own budget min-combined
  with ``--request-timeout``); an expired request answers
  ``deadline_exceeded`` without touching a worker, and the worker's
  admission queue honors the propagated remainder.
- **Hedged dispatch** — a primary that has not answered within the
  hedge delay (rolling p95 of completed requests, or ``--hedge-ms``)
  is re-dispatched to the next distinct ring worker; the first real
  response wins and the loser's answer is discarded on arrival.  Hedge
  volume is capped by a token bucket (``--hedge-budget`` of routed
  traffic), and all accounting is per *logical* request, so
  ``routed == completed + worker_lost`` and
  ``completed == primary_wins + hedge_wins`` hold exactly.
- **Brownout routing** — per-worker EWMA latency scoring removes a
  degraded worker from the ring without killing it, probes it with
  synthetic ``healthz`` requests, and reinstates it once healthy;
  killing stays the last resort for truly wedged workers.
- **Graceful drain** — SIGTERM or the ``shutdown`` op stops accepting
  (new predict/feedback draw a typed ``draining`` refusal), lets
  in-flight requests finish up to ``--drain-timeout``, retires workers
  cleanly, flushes the access log, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import TELEMETRY
from repro.obs.context import new_trace_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import DEFAULT_QUANTILES, quantile_key, snapshot_quantile
from repro.serving.modelstore import ModelStore
from repro.serving.protocol import (
    CODE_DEADLINE,
    CODE_DRAINING,
    CODE_WORKER_LOST,
    REASON_WORKER_LOST,
    RequestParseError,
    encode_response,
    fallback_response,
    invalid_response,
    ok_response,
    overloaded_response,
    parse_request_line,
)
from repro.serving.reload import RELOAD_SWAPPED, ModelHost
from repro.serving.routing import HashRing

#: Ops the front-end answers itself (everything else is routed).
TIER_OPS = ("health", "healthz", "metrics", "reload", "shutdown")


class TierError(RuntimeError):
    """The tier could not be brought up (worker boot failure)."""


@dataclass(frozen=True)
class TierConfig:
    """Knobs of one serving tier (front-end + workers)."""

    model_path: str
    #: Scratch directory owning the model store and worker sockets.
    run_dir: str
    #: Initial worker count.
    workers: int = 2
    #: Autoscale floor/ceiling; both default to ``workers`` (no scaling).
    workers_min: int | None = None
    workers_max: int | None = None
    #: Extra ``repro serve`` CLI flags forwarded verbatim to each worker
    #: (queue size, breaker knobs, tiering, ... — the worker is the
    #: unchanged single-process server).
    worker_args: tuple[str, ...] = ()
    fallback_format: str = "csr"
    max_request_bytes: int = 16 * 1024 * 1024
    #: Watch the model path and publish validated candidates tier-wide.
    hot_reload: bool = True
    #: Autoscale cadence; also the respawn-check cadence.
    scale_interval_seconds: float = 0.25
    #: Mean in-flight requests per worker that triggers a spawn/retire.
    scale_up_depth: float = 4.0
    scale_down_depth: float = 0.25
    #: Patience for one routed request before the worker is presumed
    #: wedged and killed (its in-flight load then gets typed errors).
    #: Also the front-end-stamped latency budget: every routed request
    #: carries ``min(this, client deadline_ms)`` as its remaining
    #: ``deadline_ms`` on the worker wire.
    request_timeout_seconds: float = 60.0
    boot_timeout_seconds: float = 60.0
    #: Hedge delay override in milliseconds.  ``None`` (default) uses
    #: the rolling p95 of completed-request latency — no hedging until
    #: ``hedge_warmup`` samples exist; <= 0 disables hedging.
    hedge_ms: float | None = None
    #: Token-bucket hedge budget as a fraction of routed traffic
    #: (0.05 = at most ~5% of requests hedge); <= 0 disables hedging.
    hedge_budget: float = 0.05
    #: Completed-request samples required before auto-p95 hedging arms.
    hedge_warmup: int = 32
    #: EWMA-latency multiple of the fleet median that browns a worker
    #: out of the ring (state preserved, no kill); 0 disables.
    brownout_factor: float = 4.0
    #: Absolute EWMA floor below which brownout never triggers — a
    #: uniformly fast fleet must not shed its (microseconds-) slowest.
    brownout_floor_seconds: float = 0.005
    #: Per-worker answered responses before its EWMA is trusted.
    brownout_min_samples: int = 16
    #: Consecutive healthy ``healthz`` probes that reinstate a worker.
    brownout_probes: int = 3
    #: Re-brownout immunity after reinstatement.
    brownout_cooldown_seconds: float = 1.0
    #: Patience for in-flight requests when SIGTERM/``shutdown`` drains.
    drain_timeout_seconds: float = 10.0
    #: Non-CURRENT model-store versions kept by GC after each publish
    #: (< 1 disables pruning).
    store_keep: int = 2
    #: Per-worker-name environment overrides, merged over ``extra_env``
    #: — how the chaos drill and the tail bench make exactly one worker
    #: slow (``{"w0": {"REPRO_FAULTS": "latency=1,delay=0.05"}}``).
    worker_env: dict = field(default_factory=dict)

    @property
    def min_workers(self) -> int:
        return self.workers if self.workers_min is None else self.workers_min

    @property
    def max_workers(self) -> int:
        return self.workers if self.workers_max is None else self.workers_max


@dataclass
class _Pending:
    """One request in flight on a worker connection (FIFO-matched).

    Deliberately carries no accounting flags: a hedged logical request
    has up to two pendings in flight at once, so all
    routed/completed/worker_lost bookkeeping happens once per *logical*
    request in :meth:`ServingTier._route`, never per pending.
    """

    future: asyncio.Future
    op: str
    request_id: str | None


class WorkerHandle:
    """Front-end bookkeeping for one worker process + its connection."""

    def __init__(self, name: str, socket_path: str) -> None:
        self.name = name
        self.socket_path = socket_path
        self.proc: subprocess.Popen | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.pending: deque[_Pending] = deque()
        self.lock = asyncio.Lock()
        self.reader_task: asyncio.Task | None = None
        self.retiring = False
        #: Set (synchronously with the pending flush) when the worker is
        #: gone; dispatchers that already hold a reference must check it
        #: before enqueueing.
        self.closed = False
        self.started_at = time.monotonic()
        self.n_answered = 0
        #: EWMA of per-response latency on this connection (brownout
        #: scoring input); reset on reinstatement so recovery is judged
        #: on fresh evidence.
        self.ewma_seconds: float | None = None
        self.n_observed = 0
        #: Off the ring but alive: state preserved, probed via synthetic
        #: ``healthz`` until reinstated.
        self.browned_out = False
        self.probe_successes = 0
        self.brownout_threshold = 0.0
        self.reinstated_at = 0.0

    @property
    def inflight(self) -> int:
        return len(self.pending)

    def note_latency(self, elapsed: float, alpha: float = 0.2) -> None:
        """Fold one response latency into the brownout EWMA."""
        if self.ewma_seconds is None:
            self.ewma_seconds = elapsed
        else:
            self.ewma_seconds += alpha * (elapsed - self.ewma_seconds)
        self.n_observed += 1

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()


class ServingTier:
    """The asyncio front-end plus its worker fleet."""

    def __init__(
        self,
        config: TierConfig,
        extra_env: dict[str, str] | None = None,
        access_log=None,
    ) -> None:
        self.config = config
        self.extra_env = dict(extra_env or {})
        self.access_log = access_log
        os.makedirs(config.run_dir, exist_ok=True)
        self.store = ModelStore(os.path.join(config.run_dir, "store"))
        # The tier's single shadow validator: only what this host swaps
        # in is ever published to the store the workers attach to.
        self.host = ModelHost(config.model_path)
        if self.host.active.selector is not None:
            self.store.publish(
                self.host.active.selector, self.host.active.sha256
            )
            self.store.prune(config.store_keep)
        self.ring = HashRing()
        self.workers: dict[str, WorkerHandle] = {}
        self.target_workers = max(
            config.min_workers, min(config.workers, config.max_workers)
        )
        self._next_worker = 0
        self._conn_counter = 0
        #: Names of workers that died unretired, awaiting respawn under
        #: the same ring position (bounded key movement).
        self._lost_names: set[str] = set()
        #: Serializes fleet changes: the reader-loop respawn trigger and
        #: the periodic scale loop must not both spawn for one death.
        self._capacity_lock: asyncio.Lock | None = None
        self._stopping = False
        self._stopped = False
        self._draining = False
        self._stop_event = asyncio.Event()
        self._scale_task: asyncio.Task | None = None
        self._drain_task: asyncio.Task | None = None
        self.started_at = time.monotonic()
        # Tier counters; `routed == completed + worker_lost` and
        # `completed == primary_wins + hedge_wins` are the
        # reconciliations the chaos drill asserts.
        self.n_routed = 0
        self.n_completed = 0
        self.n_worker_lost = 0
        self.n_respawned = 0
        self.n_rebalanced = 0
        self.n_timeouts = 0
        self.n_hedges = 0
        self.n_hedge_wins = 0
        self.n_primary_wins = 0
        self.n_deadline_exceeded = 0
        self.n_brownouts = 0
        self.n_reinstated = 0
        self.n_draining_rejected = 0
        # Hedge token bucket: tokens accrue per routed request at the
        # budget rate; each hedge spends one.  The burst cap bounds how
        # many hedges a latency clump can fire back-to-back.
        self._hedge_burst = max(1.0, 32.0 * max(config.hedge_budget, 0.0))
        self._hedge_tokens = self._hedge_burst
        # Rolling completed-request latencies feeding the auto (p95)
        # hedge delay; recomputed every 16 samples once warmed up.
        self._latency_samples: deque[float] = deque(maxlen=512)
        self._samples_seen = 0
        self._auto_hedge_delay: float | None = None

    # -- worker lifecycle ---------------------------------------------------

    def _worker_command(self, name: str, socket_path: str) -> list[str]:
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--model",
            self.config.model_path,
            "--socket",
            socket_path,
            "--worker-store",
            self.store.root,
            "--worker-id",
            name,
            *self.config.worker_args,
        ]

    async def _spawn_worker(self, name: str | None = None) -> WorkerHandle:
        """Boot one worker process and connect to its socket."""
        if name is None:
            name = f"w{self._next_worker}"
            self._next_worker += 1
        socket_path = os.path.join(self.config.run_dir, f"{name}.sock")
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        handle = WorkerHandle(name, socket_path)
        handle.proc = subprocess.Popen(
            self._worker_command(name, socket_path),
            # Per-name env wins over tier-wide extra_env, and a respawn
            # under the old name re-applies it — a chaos-slow worker
            # stays slow across its own death.
            env={
                **os.environ,
                **self.extra_env,
                **self.config.worker_env.get(name, {}),
            },
            stdin=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + self.config.boot_timeout_seconds
        while True:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    socket_path
                )
                break
            except (OSError, ValueError):
                if handle.proc.poll() is not None:
                    raise TierError(
                        f"worker {name} exited with "
                        f"{handle.proc.returncode} before serving"
                    )
                if time.monotonic() > deadline:
                    handle.kill()
                    raise TierError(
                        f"worker {name} did not open {socket_path} within "
                        f"{self.config.boot_timeout_seconds}s"
                    )
                await asyncio.sleep(0.05)
        handle.reader, handle.writer = reader, writer
        handle.reader_task = asyncio.ensure_future(self._reader_loop(handle))
        self.workers[name] = handle
        self.ring.add(name)
        self.n_rebalanced += 1
        TELEMETRY.inc("serving.rebalanced")
        TELEMETRY.gauge_set("serving.workers", float(len(self.workers)))
        return handle

    async def _reader_loop(self, handle: WorkerHandle) -> None:
        """Match one worker's response lines FIFO against its in-flight."""
        try:
            while True:
                line = await handle.reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:  # pragma: no cover - defensive
                    response = invalid_response(
                        "internal_error",
                        f"worker {handle.name} sent an unparseable response",
                    )
                if handle.pending:
                    pend = handle.pending.popleft()
                    if not pend.future.done():
                        pend.future.set_result(response)
                    handle.n_answered += 1
        except (ConnectionError, OSError):  # pragma: no cover - defensive
            pass
        finally:
            self._flush_worker(handle)
            if not self._stopping and not handle.retiring:
                self._lost_names.add(handle.name)
                asyncio.ensure_future(self._ensure_capacity())

    def _flush_worker(self, handle: WorkerHandle) -> None:
        """Synchronously fail everything in flight on a gone worker.

        Runs in one event-loop step (no awaits), so a dispatcher either
        enqueued before the flush — and is answered here — or observes
        ``handle.closed`` afterwards and never enqueues.  Every response
        is *typed*: predict/feedback still carry a safe format.
        """
        handle.closed = True
        self.workers.pop(handle.name, None)
        if handle.name in self.ring:
            self.ring.remove(handle.name)
            self.n_rebalanced += 1
            TELEMETRY.inc("serving.rebalanced")
        while handle.pending:
            pend = handle.pending.popleft()
            if pend.future.done():
                continue
            if pend.op in ("predict", "feedback"):
                response = fallback_response(
                    self.config.fallback_format,
                    REASON_WORKER_LOST,
                    pend.request_id,
                    worker=handle.name,
                )
            else:
                response = invalid_response(
                    CODE_WORKER_LOST,
                    f"worker {handle.name} died with the request in flight",
                    pend.request_id,
                )
            pend.future.set_result(response)
        if handle.writer is not None:
            handle.writer.close()
        TELEMETRY.gauge_set("serving.workers", float(len(self.workers)))

    async def _ensure_capacity(self) -> None:
        """Spawn (serialized) until the alive count meets the target.

        Lost names are respawned first, and a respawned worker keeps its
        old ring position: the keys that moved off it while it was dead
        move back, and nothing else moves — the bounded-movement half of
        the routing contract.  The lock keeps the reader-loop trigger
        and the scale loop from double-spawning for one death.
        """
        if self._capacity_lock is None:
            self._capacity_lock = asyncio.Lock()
        async with self._capacity_lock:
            while not self._stopping and len(self.workers) < max(
                self.target_workers, self.config.min_workers
            ):
                name = None
                if self._lost_names:
                    name = sorted(self._lost_names)[0]
                    self._lost_names.discard(name)
                try:
                    await self._spawn_worker(name)
                except TierError:  # pragma: no cover - boot env failure
                    return
                if name is not None:
                    self.n_respawned += 1
                    TELEMETRY.inc("serving.respawned")
            # Any leftover lost name is capacity the tier no longer
            # needs (the target shrank while it was down).
            self._lost_names.clear()

    async def _retire_worker(self, handle: WorkerHandle) -> None:
        """Drain one worker, then ask it to shut down."""
        handle.retiring = True
        if handle.name in self.ring:
            self.ring.remove(handle.name)
            self.n_rebalanced += 1
            TELEMETRY.inc("serving.rebalanced")
        deadline = time.monotonic() + self.config.request_timeout_seconds
        while handle.pending and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        self.workers.pop(handle.name, None)
        TELEMETRY.gauge_set("serving.workers", float(len(self.workers)))
        try:
            async with handle.lock:
                if not handle.closed and handle.writer is not None:
                    handle.pending.append(
                        _Pending(
                            asyncio.get_running_loop().create_future(),
                            "shutdown",
                            None,
                        )
                    )
                    handle.writer.write(b'{"op":"shutdown"}\n')
                    await handle.writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - defensive
            pass
        await asyncio.sleep(0.1)
        handle.kill()

    def plan_scale(self, alive: list[WorkerHandle]) -> str | None:
        """Pure scaling decision for the current fleet: up/down/None.

        ``min == max`` is a hard no-scale band regardless of depth, so a
        fixed-size tier never churns workers.  Separated from the loop
        so the decision is unit-testable without processes.
        """
        if not alive:
            return None
        if self.config.min_workers == self.config.max_workers:
            return None
        depth = sum(w.inflight for w in alive) / len(alive)
        if (
            depth > self.config.scale_up_depth
            and self.target_workers < self.config.max_workers
        ):
            return "up"
        if (
            depth < self.config.scale_down_depth
            and self.target_workers > self.config.min_workers
            and len(alive) > self.config.min_workers
        ):
            return "down"
        return None

    def scale_down_victim(
        self, alive: list[WorkerHandle]
    ) -> WorkerHandle | None:
        """Youngest *idle* worker, or ``None`` when every worker is busy.

        A worker with requests in flight is never retired by scale-down
        — retiring it would convert live requests into typed losses just
        to save capacity the tier demonstrably still needs.
        """
        idle = [w for w in alive if w.inflight == 0]
        if not idle:
            return None
        return max(idle, key=lambda w: w.started_at)

    async def _scale_loop(self) -> None:
        """Respawn the dead, watch the model, score brownouts, scale."""
        interval = max(self.config.scale_interval_seconds, 0.01)
        while not self._stopping:
            await asyncio.sleep(interval)
            if self._stopping:
                return
            if self.config.hot_reload:
                self.check_reload()
            await self._ensure_capacity()
            self._brownout_check()
            await self._probe_brownouts()
            alive = [
                w for w in self.workers.values()
                if not w.retiring and not w.browned_out
            ]
            plan = self.plan_scale(alive)
            if plan == "up":
                self.target_workers += 1
                TELEMETRY.inc("serving.scale_up")
                await self._ensure_capacity()
            elif plan == "down":
                victim = self.scale_down_victim(alive)
                if victim is not None:
                    self.target_workers -= 1
                    TELEMETRY.inc("serving.scale_down")
                    asyncio.ensure_future(self._retire_worker(victim))

    # -- brownout routing ---------------------------------------------------

    def _brownout_check(self) -> None:
        """Pull the one clear latency outlier off the ring, alive.

        A worker whose EWMA exceeds ``brownout_factor ×`` the fleet
        median (and the absolute floor) stops receiving traffic but
        keeps its process, connection, and per-client state; synthetic
        ``healthz`` probes decide when it returns.  Killing is reserved
        for wedged workers (the ``_forward`` timeout path).
        """
        if self.config.brownout_factor <= 0 or self._draining:
            return
        active = [
            w for w in self.workers.values()
            if not w.retiring and not w.closed and not w.browned_out
        ]
        # Never brown out below two active workers: shedding the last
        # pair's slower half would halve capacity on a whim.
        if len(active) < 2 or len(self.ring) < 2:
            return
        now = time.monotonic()
        scored = [
            w for w in active
            if w.ewma_seconds is not None
            and w.n_observed >= self.config.brownout_min_samples
            and now - w.reinstated_at
            >= self.config.brownout_cooldown_seconds
        ]
        if len(scored) < 2:
            return
        ewmas = sorted(w.ewma_seconds for w in scored)
        median = ewmas[len(ewmas) // 2]
        threshold = max(
            self.config.brownout_floor_seconds,
            self.config.brownout_factor * median,
        )
        worst = max(scored, key=lambda w: w.ewma_seconds)
        if worst.ewma_seconds > threshold:
            self._brownout(worst, threshold)

    def _brownout(self, handle: WorkerHandle, threshold: float) -> None:
        if handle.name in self.ring:
            self.ring.remove(handle.name)
            self.n_rebalanced += 1
            TELEMETRY.inc("serving.rebalanced")
        handle.browned_out = True
        handle.probe_successes = 0
        handle.brownout_threshold = threshold
        self.n_brownouts += 1
        TELEMETRY.inc("serving.brownouts")

    async def _probe_brownouts(self) -> None:
        """One synthetic ``healthz`` per browned-out worker per tick."""
        for handle in list(self.workers.values()):
            if not handle.browned_out or handle.retiring or handle.closed:
                continue
            request = parse_request_line(
                json.dumps({"id": f"__probe_{handle.name}", "op": "healthz"})
            )
            probe_at = time.monotonic()
            response = await self._forward(handle, request, new_trace_id())
            elapsed = time.monotonic() - probe_at
            healthy = (
                isinstance(response, dict)
                and response.get("status") == "ok"
                and response.get("state") == "ok"
                and elapsed <= max(
                    handle.brownout_threshold,
                    self.config.brownout_floor_seconds,
                )
            )
            if not healthy:
                handle.probe_successes = 0
                continue
            handle.probe_successes += 1
            if handle.probe_successes >= max(self.config.brownout_probes, 1):
                self._reinstate(handle)

    def _reinstate(self, handle: WorkerHandle) -> None:
        handle.browned_out = False
        handle.probe_successes = 0
        # Recovery is judged on fresh evidence, not the degraded EWMA.
        handle.ewma_seconds = None
        handle.n_observed = 0
        handle.reinstated_at = time.monotonic()
        if handle.name not in self.ring:
            self.ring.add(handle.name)
            self.n_rebalanced += 1
            TELEMETRY.inc("serving.rebalanced")
        self.n_reinstated += 1
        TELEMETRY.inc("serving.reinstated")

    def kill_worker(self, name: str | None = None) -> str | None:
        """SIGKILL one alive worker (chaos hook); returns its name."""
        candidates = sorted(
            w for w in self.workers if not self.workers[w].retiring
        )
        if name is None and candidates:
            name = candidates[0]
        handle = self.workers.get(name) if name else None
        if handle is None:
            return None
        handle.kill()
        return name

    # -- model rollover -----------------------------------------------------

    def check_reload(self) -> str:
        """Watch the model path; publish tier-wide on a validated swap.

        Shadow validation happens exactly once, in this process; the
        store's CURRENT rename is the atomic flip every worker observes.
        """
        event = self.host.check_reload()
        if event == RELOAD_SWAPPED:
            self.store.publish(
                self.host.active.selector, self.host.active.sha256
            )
            self.store.prune(self.config.store_keep)
        return event

    # -- dispatch -----------------------------------------------------------

    def routing_key(self, body: dict, conn_key: str) -> str:
        """Hash key for one request: explicit client id, else connection.

        Keying on the *client* (not the request id) is what keeps a
        client's admission and breaker state on a single worker.
        """
        client = body.get("client")
        if client is not None and not isinstance(client, (dict, list)):
            return f"client:{client}"
        return conn_key

    async def dispatch(self, line: str, conn_key: str) -> dict:
        """One request line in, exactly one response dict out."""
        t0 = time.monotonic()
        try:
            request = parse_request_line(line, self.config.max_request_bytes)
        except RequestParseError as exc:
            return self._log_access(exc.response, "invalid", t0)
        if request.op == "shutdown":
            response = await self._op_shutdown(request)
        elif request.op == "reload":
            response = await self._op_reload(request)
        elif request.op == "metrics":
            response = await self._op_metrics(request)
        elif request.op in ("health", "healthz"):
            response = await self._op_health(request)
        elif self._draining:
            # Draining: tier ops above still answer (an operator must be
            # able to watch the drain), but no new work is accepted.
            self.n_draining_rejected += 1
            TELEMETRY.inc("serving.draining_rejected")
            response = overloaded_response(CODE_DRAINING, request.id)
        else:
            response = await self._route(
                request, self.routing_key(request.body, conn_key)
            )
        return self._log_access(response, request.op, t0)

    def _log_access(self, response: dict, op: str, t0: float) -> dict:
        """Emit one access-log event per answered request (if wired).

        Same field shape as the worker's per-request log, so one parser
        reads both tiers' logs.
        """
        if self.access_log is not None:
            fields: dict = {
                "status": response.get("status"),
                "id": response.get("id"),
                "op": op,
                "latency_ms": round((time.monotonic() - t0) * 1e3, 3),
            }
            code = response.get("code") or response.get("reason")
            if code is not None:
                fields["code"] = code
            try:
                self.access_log.emit("request", **fields)
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        return response

    def _unroutable(self, request) -> dict:
        if request.op in ("predict", "feedback"):
            return fallback_response(
                self.config.fallback_format,
                REASON_WORKER_LOST,
                request.id,
                error="no worker available",
            )
        return invalid_response(
            CODE_WORKER_LOST, "no worker available", request.id
        )

    def _budget_seconds(self, request) -> float | None:
        """Effective latency budget: client deadline min ``--request-timeout``."""
        budgets = []
        if self.config.request_timeout_seconds > 0:
            budgets.append(self.config.request_timeout_seconds)
        if request.budget_ms is not None:
            budgets.append(request.budget_ms / 1000.0)
        return min(budgets) if budgets else None

    async def _route(self, request, key: str) -> dict:
        """Consistent-hash route one request; never hangs, never raises.

        This is the *single* accounting point per logical request: a
        hedged request has two pendings in flight, but exactly one
        routed/completed/worker_lost increment happens here, on the
        winning (or last-resort) response — so
        ``routed == completed + worker_lost`` and
        ``completed == primary_wins + hedge_wins`` hold exactly.
        """
        trace_id = new_trace_id()
        t0 = time.monotonic()
        budget = self._budget_seconds(request)
        deadline = t0 + budget if budget is not None else None
        give_up = t0 + self.config.boot_timeout_seconds
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                self.n_deadline_exceeded += 1
                TELEMETRY.inc("serving.deadline_exceeded")
                return overloaded_response(CODE_DEADLINE, request.id)
            try:
                name = self.ring.assign(key)
            except LookupError:
                name = None
            handle = self.workers.get(name) if name is not None else None
            if handle is not None and not handle.retiring and not handle.closed:
                with TELEMETRY.span(
                    "serving.route",
                    trace=trace_id,
                    worker=handle.name,
                    op=request.op,
                ):
                    response, via = await self._dispatch_hedged(
                        handle, request, key, trace_id, deadline
                    )
                # None = the worker vanished between selection and
                # enqueue; nothing was sent — re-route this request.
                if response is not None:
                    self.n_routed += 1
                    TELEMETRY.inc("serving.routed")
                    self._hedge_tokens = min(
                        self._hedge_burst,
                        self._hedge_tokens + max(self.config.hedge_budget, 0.0),
                    )
                    lost = (
                        response.get("reason") == REASON_WORKER_LOST
                        or response.get("code") == CODE_WORKER_LOST
                    )
                    if lost:
                        self.n_worker_lost += 1
                        TELEMETRY.inc("serving.worker_lost")
                    else:
                        self.n_completed += 1
                        self._record_latency(time.monotonic() - t0)
                        if via == "hedge":
                            self.n_hedge_wins += 1
                            TELEMETRY.inc("serving.hedge_wins")
                        else:
                            self.n_primary_wins += 1
                            TELEMETRY.inc("serving.primary_wins")
                    return response
            if self._stopping or time.monotonic() > give_up:
                return self._unroutable(request)
            await asyncio.sleep(0.02)

    # -- hedged dispatch ----------------------------------------------------

    def _hedge_delay_seconds(self) -> float | None:
        """Current hedge delay, or ``None`` when hedging is off/not armed."""
        if self.config.hedge_budget <= 0 or self._draining:
            return None
        if len(self.ring) < 2:
            return None
        if self.config.hedge_ms is not None:
            if self.config.hedge_ms <= 0:
                return None
            return self.config.hedge_ms / 1000.0
        return self._auto_hedge_delay

    def _record_latency(self, elapsed: float) -> None:
        """Feed the rolling-p95 auto hedge delay; cheap, amortized."""
        self._latency_samples.append(elapsed)
        self._samples_seen += 1
        if (
            len(self._latency_samples) >= max(self.config.hedge_warmup, 1)
            and self._samples_seen % 16 == 0
        ):
            ordered = sorted(self._latency_samples)
            at = min(int(len(ordered) * 0.95), len(ordered) - 1)
            self._auto_hedge_delay = max(ordered[at], 0.001)

    def _take_hedge_token(self) -> bool:
        if self._hedge_tokens < 1.0:
            return False
        self._hedge_tokens -= 1.0
        return True

    def _hedge_target(self, key: str, primary: WorkerHandle):
        """Next distinct live ring worker after ``primary`` for ``key``."""
        for name in self.ring.successors(key):
            if name == primary.name:
                continue
            handle = self.workers.get(name)
            if (
                handle is not None
                and not handle.retiring
                and not handle.closed
                and not handle.browned_out
            ):
                return handle
        return None

    async def _dispatch_hedged(
        self,
        handle: WorkerHandle,
        request,
        key: str,
        trace_id: str,
        deadline: float | None,
    ) -> tuple[dict | None, str]:
        """Forward with optional hedging; first real response wins.

        Returns ``(response, via)`` where ``via`` is ``"primary"`` or
        ``"hedge"``.  The losing branch's eventual answer is consumed by
        its worker's reader loop into an already-resolved future, so it
        is discarded on arrival without disturbing FIFO matching.
        """
        primary = asyncio.ensure_future(
            self._forward(handle, request, trace_id, deadline=deadline)
        )
        delay = self._hedge_delay_seconds()
        if delay is None:
            return await primary, "primary"
        done, _ = await asyncio.wait({primary}, timeout=delay)
        if done:
            return primary.result(), "primary"
        hedge_to = self._hedge_target(key, handle)
        if hedge_to is None or not self._take_hedge_token():
            return await primary, "primary"
        self.n_hedges += 1
        TELEMETRY.inc("serving.hedges")
        hedge = asyncio.ensure_future(
            self._forward(hedge_to, request, trace_id, deadline=deadline)
        )
        branches = {primary: "primary", hedge: "hedge"}
        lost_response: tuple[dict, str] | None = None
        pending = set(branches)
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                response = task.result()
                if response is None:
                    # Never enqueued on that worker; the other branch
                    # may still answer.
                    continue
                lost = (
                    response.get("reason") == REASON_WORKER_LOST
                    or response.get("code") == CODE_WORKER_LOST
                )
                if lost:
                    # Hold as last resort: the other branch may still
                    # produce a real answer.
                    lost_response = (response, branches[task])
                    continue
                return response, branches[task]
        if lost_response is not None:
            return lost_response
        return None, "primary"

    async def _forward(
        self,
        handle: WorkerHandle,
        request,
        trace_id: str,
        deadline: float | None = None,
    ):
        """Send one request down a worker connection and await its answer.

        Returns ``None`` if the worker closed before the request could
        be enqueued (caller re-routes).  A timeout kills the worker:
        FIFO matching cannot survive a skipped response, so a wedged
        worker is converted into a dead one, whose in-flight requests
        all get typed answers.  When ``deadline`` is set, the remaining
        budget rides the wire as ``deadline_ms`` so the worker's
        admission queue and pre-predict gate honor it downstream.
        """
        body = dict(request.body)
        body["_trace"] = trace_id
        if deadline is not None:
            body["deadline_ms"] = max(
                0.0, round((deadline - time.monotonic()) * 1000.0, 3)
            )
        payload = (
            json.dumps(body, separators=(",", ":"), default=str) + "\n"
        ).encode("utf-8")
        loop = asyncio.get_running_loop()
        pend = _Pending(loop.create_future(), request.op, request.id)
        sent_at = time.monotonic()
        async with handle.lock:
            if handle.closed:
                return None
            handle.pending.append(pend)
            try:
                handle.writer.write(payload)
            except (ConnectionError, OSError):  # pragma: no cover
                if pend in handle.pending:
                    handle.pending.remove(pend)
                return None
        try:
            await handle.writer.drain()
        except (ConnectionError, OSError):
            pass  # the reader loop flushes `pend` with a typed response
        timeout = self.config.request_timeout_seconds
        try:
            response = await asyncio.wait_for(
                asyncio.shield(pend.future), timeout if timeout > 0 else None
            )
        except asyncio.TimeoutError:
            self.n_timeouts += 1
            TELEMETRY.inc("serving.worker_timeout")
            handle.kill()  # reader EOF will flush `pend` with worker_lost
            response = await pend.future
        handle.note_latency(time.monotonic() - sent_at)
        return response

    async def _fanout(self, op: str) -> dict[str, dict]:
        """Send one tier op to every alive worker; gather by name."""
        handles = [
            w for w in self.workers.values()
            if not w.retiring and not w.closed
        ]
        if not handles:
            return {}

        async def ask(handle: WorkerHandle) -> tuple[str, dict | None]:
            request = parse_request_line(
                json.dumps({"op": op, "id": f"__tier_{op}"})
            )
            response = await self._forward(handle, request, new_trace_id())
            return handle.name, response

        results = await asyncio.gather(*(ask(h) for h in handles))
        return {
            name: response
            for name, response in results
            if isinstance(response, dict)
        }

    # -- tier ops -----------------------------------------------------------

    async def _op_metrics(self, request) -> dict:
        """Tier-wide metrics: every worker's snapshot, merged.

        Counters add, gauges last-write-wins, histograms merge
        bucket-by-bucket (:meth:`MetricsRegistry.merge_snapshot`), so
        ``serving.latency_seconds`` quantiles describe the whole tier —
        not just the worker that happened to answer the socket.
        """
        per_worker = await self._fanout("metrics")
        registry = MetricsRegistry()
        for name in sorted(per_worker):
            snap = per_worker[name].get("metrics")
            if isinstance(snap, dict):
                try:
                    registry.merge_snapshot(snap)
                except ValueError:  # pragma: no cover - defensive
                    continue
        snap = dict(registry.snapshot())
        snap.update(self.tier_metrics())
        snap = {name: snap[name] for name in sorted(snap)}
        quantiles: dict = {}
        latency = snap.get("serving.latency_seconds")
        for q in DEFAULT_QUANTILES:
            est = snapshot_quantile(latency, q) if latency else float("nan")
            quantiles[quantile_key(q)] = (
                round(est * 1e3, 6) if est == est else None
            )
        return ok_response(
            request.id,
            op="metrics",
            workers=len(per_worker),
            quantiles_ms=quantiles,
            metrics=snap,
        )

    def tier_metrics(self) -> dict[str, dict]:
        """The front-end's own instruments, snapshot-shaped."""
        return {
            "serving.workers": {
                "type": "gauge", "value": float(len(self.workers)),
            },
            "serving.routed": {
                "type": "counter", "value": float(self.n_routed),
            },
            "serving.completed": {
                "type": "counter", "value": float(self.n_completed),
            },
            "serving.worker_lost": {
                "type": "counter", "value": float(self.n_worker_lost),
            },
            "serving.respawned": {
                "type": "counter", "value": float(self.n_respawned),
            },
            "serving.rebalanced": {
                "type": "counter", "value": float(self.n_rebalanced),
            },
            "serving.hedges": {
                "type": "counter", "value": float(self.n_hedges),
            },
            "serving.hedge_wins": {
                "type": "counter", "value": float(self.n_hedge_wins),
            },
            "serving.primary_wins": {
                "type": "counter", "value": float(self.n_primary_wins),
            },
            "serving.deadline_exceeded": {
                "type": "counter", "value": float(self.n_deadline_exceeded),
            },
            "serving.brownouts": {
                "type": "counter", "value": float(self.n_brownouts),
            },
            "serving.reinstated": {
                "type": "counter", "value": float(self.n_reinstated),
            },
            "serving.draining_rejected": {
                "type": "counter", "value": float(self.n_draining_rejected),
            },
        }

    async def _op_health(self, request) -> dict:
        """Aggregated liveness: the tier is what the prober asked about."""
        per_worker = await self._fanout(request.op)
        if request.op == "healthz":
            states = {
                name: resp.get("state", "degraded")
                for name, resp in per_worker.items()
            }
            degraded = (
                not states or any(s != "ok" for s in states.values())
            )
            return ok_response(
                request.id,
                op="healthz",
                state="degraded" if degraded else "ok",
                uptime_seconds=round(time.monotonic() - self.started_at, 3),
                workers=len(self.workers),
                worker_states={k: states[k] for k in sorted(states)},
                queue_depth=sum(
                    int(r.get("queue_depth", 0)) for r in per_worker.values()
                ) + sum(w.inflight for w in self.workers.values()),
                routed=self.n_routed,
                worker_lost=self.n_worker_lost,
                respawned=self.n_respawned,
            )
        return ok_response(
            request.id,
            op="health",
            uptime_seconds=round(time.monotonic() - self.started_at, 3),
            model=self.host.snapshot(),
            workers={k: per_worker[k] for k in sorted(per_worker)},
            routed=self.n_routed,
            worker_lost=self.n_worker_lost,
            respawned=self.n_respawned,
            rebalanced=self.n_rebalanced,
        )

    async def _op_reload(self, request) -> dict:
        """Validate once at the front-end, flip every worker atomically."""
        event = self.check_reload()
        per_worker = await self._fanout("reload")
        return ok_response(
            request.id,
            op="reload",
            event=event,
            model=self.host.snapshot(),
            workers={
                name: per_worker[name].get("event")
                for name in sorted(per_worker)
            },
        )

    async def _op_shutdown(self, request) -> dict:
        # Graceful drain, not a guillotine: by the time this response is
        # written back, `_draining` is already set, so no request
        # arriving after the acknowledgement can slip into the fleet —
        # but everything already in flight gets to finish.
        self.begin_drain()
        return ok_response(
            request.id,
            op="shutdown",
            workers=len(self.workers),
            draining=True,
        )

    # -- graceful drain -----------------------------------------------------

    def begin_drain(self) -> None:
        """Enter draining: refuse new work, finish in-flight, then stop.

        Idempotent — the shutdown op and SIGTERM may both fire.  The
        drill's contract: zero silently-dropped requests.  Every
        in-flight request either completes or (past ``--drain-timeout``)
        is flushed with a typed response when the fleet is torn down;
        every post-drain arrival gets a typed ``draining`` refusal.
        """
        if self._draining or self._stopping or self._stopped:
            return
        self._draining = True
        TELEMETRY.inc("serving.drains")
        self._drain_task = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        with TELEMETRY.span("serving.drain"):
            # Give the shutdown acknowledgement (if any) a beat to reach
            # its client before the accept loop starts tearing down.
            await asyncio.sleep(0.05)
            deadline = time.monotonic() + max(
                self.config.drain_timeout_seconds, 0.0
            )
            while time.monotonic() < deadline and any(
                w.pending for w in self.workers.values()
            ):
                await asyncio.sleep(0.02)
            # Workers are idle; let the client conversations write their
            # final responses back before the fleet is torn down.
            await asyncio.sleep(0.05)
            self._stopping = True
            self._stop_event.set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Boot the initial fleet and the autoscale loop."""
        await self._ensure_capacity()
        self._scale_task = asyncio.ensure_future(self._scale_loop())

    async def stop(self) -> None:
        """Stop routing, shut every worker down, reap the fleet."""
        if self._stopped:
            return
        self._stopped = True
        self._stopping = True
        if self._scale_task is not None:
            self._scale_task.cancel()
        if self._drain_task is not None and not self._drain_task.done():
            self._drain_task.cancel()
        for handle in list(self.workers.values()):
            try:
                async with handle.lock:
                    if not handle.closed and handle.writer is not None:
                        handle.pending.append(
                            _Pending(
                                asyncio.get_running_loop().create_future(),
                                "shutdown",
                                None,
                            )
                        )
                        handle.writer.write(b'{"op":"shutdown"}\n')
                        await handle.writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        deadline = time.monotonic() + 5.0
        for handle in list(self.workers.values()):
            while (
                handle.proc is not None
                and handle.proc.poll() is None
                and time.monotonic() < deadline
            ):
                await asyncio.sleep(0.05)
            handle.kill()
            self._flush_worker(handle)
        if self.access_log is not None:
            try:
                self.access_log.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._stop_event.set()

    async def _serve_client(self, reader, writer) -> None:
        """One JSONL conversation; responses in request order."""
        self._conn_counter += 1
        conn_key = f"conn:{self._conn_counter}"
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", "replace")
                if not text.strip():
                    continue
                response = await self.dispatch(text, conn_key)
                writer.write((encode_response(response) + "\n").encode())
                await writer.drain()
                if self._stopping:
                    break
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass
        finally:
            try:
                writer.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def _install_sigterm(self) -> bool:
        """SIGTERM → graceful drain (best effort; not every loop can)."""
        try:
            asyncio.get_running_loop().add_signal_handler(
                signal.SIGTERM, self.begin_drain
            )
            return True
        except (NotImplementedError, RuntimeError, ValueError):
            return False  # pragma: no cover - non-main-thread / platform

    def _remove_sigterm(self, installed: bool) -> None:
        if not installed:
            return
        try:
            asyncio.get_running_loop().remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # pragma: no cover - defensive

    async def run_socket(self, socket_path: str) -> int:
        """Serve the tier on a front Unix socket until shutdown."""
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        await self.start()
        sigterm = self._install_sigterm()
        server = await asyncio.start_unix_server(
            self._serve_client, path=socket_path
        )
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._remove_sigterm(sigterm)
            await self.stop()
            if os.path.exists(socket_path):
                os.unlink(socket_path)
        return 0

    async def run_stdio(self, instream=None, outstream=None) -> int:
        """Serve the tier over stdin/stdout (one implicit client)."""
        await self.start()
        sigterm = self._install_sigterm()
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        protocol = asyncio.StreamReaderProtocol(reader)
        await loop.connect_read_pipe(
            lambda: protocol, instream if instream is not None else sys.stdin
        )
        out = outstream if outstream is not None else sys.stdout
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", "replace")
                if not text.strip():
                    continue
                response = await self.dispatch(text, "stdio")
                out.write(encode_response(response) + "\n")
                out.flush()
        finally:
            self._remove_sigterm(sigterm)
            await self.stop()
        return 0


async def drive_tier(
    socket_path: str,
    lines: Iterable[str],
    connections: int = 8,
    actions: dict | None = None,
) -> list[tuple[str, dict]]:
    """Test/bench client: fan ``lines`` over N connections, collect all.

    Lines are dealt round-robin; each connection pipelines its share
    sequentially (the JSONL conversational contract).  Returns
    ``(line, response)`` pairs indexed like ``lines``.  ``actions`` maps
    a tier-wide answered-count to a zero-argument callable fired once
    when that many responses have arrived — how the chaos drill kills a
    worker or swaps the model mid-burst.
    """
    lines = list(lines)
    shares: list[list[tuple[int, str]]] = [
        [] for _ in range(max(1, connections))
    ]
    for i, line in enumerate(lines):
        shares[i % len(shares)].append((i, line))
    results: list[tuple[str, dict] | None] = [None] * len(lines)
    progress = {"answered": 0}
    fired: set[int] = set()

    async def client(share: list[tuple[int, str]]) -> None:
        if not share:
            return
        reader, writer = await asyncio.open_unix_connection(socket_path)
        try:
            for index, line in share:
                writer.write((line.rstrip("\n") + "\n").encode())
                await writer.drain()
                raw = await reader.readline()
                if not raw:
                    raise ConnectionError("tier closed mid-conversation")
                results[index] = (line, json.loads(raw))
                progress["answered"] += 1
                for at in sorted(actions or {}):
                    if at not in fired and progress["answered"] >= at:
                        fired.add(at)
                        actions[at]()
        finally:
            writer.close()

    await asyncio.gather(*(client(share) for share in shares))
    return [r for r in results if r is not None]


__all__ = [
    "ServingTier",
    "TIER_OPS",
    "TierConfig",
    "TierError",
    "WorkerHandle",
    "drive_tier",
]
