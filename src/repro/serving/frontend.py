"""Asyncio front-end of the horizontally scaled serving tier.

``repro serve --workers N`` (N >= 2) no longer answers requests in the
accepting process.  This module runs the **front-end**: an asyncio JSONL
server that parses each incoming line just enough to type it, then

- answers protocol-level rejections itself (same
  :func:`~repro.serving.protocol.parse_request_line` as a worker, so the
  typed error bytes are identical),
- routes ``predict``/``feedback`` to one of N worker *processes* over a
  consistent-hash ring keyed on the client identity
  (:mod:`repro.serving.routing`), so per-client admission and breaker
  state stay local to one worker,
- aggregates the tier-wide ops (``metrics``/``healthz``/``health``
  merge every worker's answer via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`;
  ``reload`` shadow-validates once and flips all workers atomically
  through the shared :class:`~repro.serving.modelstore.ModelStore`).

Each worker is a ``repro serve`` subprocess running the unchanged
PR-4/PR-7 :class:`~repro.serving.server.SelectorServer` over its own
Unix socket, attached read-only to the shared mmap model store.  The
front-end holds one multiplexed connection per worker; because a worker
answers strictly in order, responses are matched FIFO against the
in-flight queue.  When a worker dies, every request in flight on it
receives a *typed* error response immediately (``fallback`` with reason
``worker_lost`` for predict/feedback, ``invalid`` with code
``worker_lost`` otherwise) — never a hang — and the worker is respawned
under its old ring name, so key movement is bounded to exactly the keys
it owned.  A queue-depth autoscale loop spawns/retires workers within
``--workers-min``/``--workers-max``.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.obs import TELEMETRY
from repro.obs.context import new_trace_id
from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import DEFAULT_QUANTILES, quantile_key, snapshot_quantile
from repro.serving.modelstore import ModelStore
from repro.serving.protocol import (
    CODE_WORKER_LOST,
    REASON_WORKER_LOST,
    RequestParseError,
    encode_response,
    fallback_response,
    invalid_response,
    ok_response,
    parse_request_line,
)
from repro.serving.reload import RELOAD_SWAPPED, ModelHost
from repro.serving.routing import HashRing

#: Ops the front-end answers itself (everything else is routed).
TIER_OPS = ("health", "healthz", "metrics", "reload", "shutdown")


class TierError(RuntimeError):
    """The tier could not be brought up (worker boot failure)."""


@dataclass(frozen=True)
class TierConfig:
    """Knobs of one serving tier (front-end + workers)."""

    model_path: str
    #: Scratch directory owning the model store and worker sockets.
    run_dir: str
    #: Initial worker count.
    workers: int = 2
    #: Autoscale floor/ceiling; both default to ``workers`` (no scaling).
    workers_min: int | None = None
    workers_max: int | None = None
    #: Extra ``repro serve`` CLI flags forwarded verbatim to each worker
    #: (queue size, breaker knobs, tiering, ... — the worker is the
    #: unchanged single-process server).
    worker_args: tuple[str, ...] = ()
    fallback_format: str = "csr"
    max_request_bytes: int = 16 * 1024 * 1024
    #: Watch the model path and publish validated candidates tier-wide.
    hot_reload: bool = True
    #: Autoscale cadence; also the respawn-check cadence.
    scale_interval_seconds: float = 0.25
    #: Mean in-flight requests per worker that triggers a spawn/retire.
    scale_up_depth: float = 4.0
    scale_down_depth: float = 0.25
    #: Patience for one routed request before the worker is presumed
    #: wedged and killed (its in-flight load then gets typed errors).
    request_timeout_seconds: float = 60.0
    boot_timeout_seconds: float = 60.0

    @property
    def min_workers(self) -> int:
        return self.workers if self.workers_min is None else self.workers_min

    @property
    def max_workers(self) -> int:
        return self.workers if self.workers_max is None else self.workers_max


@dataclass
class _Pending:
    """One request in flight on a worker connection (FIFO-matched)."""

    future: asyncio.Future
    op: str
    request_id: str | None
    #: True for client requests that went through the ring (these feed
    #: the ``routed == completed + worker_lost`` reconciliation);
    #: front-end fan-out ops are accounted separately.
    routed: bool = False


class WorkerHandle:
    """Front-end bookkeeping for one worker process + its connection."""

    def __init__(self, name: str, socket_path: str) -> None:
        self.name = name
        self.socket_path = socket_path
        self.proc: subprocess.Popen | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.pending: deque[_Pending] = deque()
        self.lock = asyncio.Lock()
        self.reader_task: asyncio.Task | None = None
        self.retiring = False
        #: Set (synchronously with the pending flush) when the worker is
        #: gone; dispatchers that already hold a reference must check it
        #: before enqueueing.
        self.closed = False
        self.started_at = time.monotonic()
        self.n_answered = 0

    @property
    def inflight(self) -> int:
        return len(self.pending)

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()


class ServingTier:
    """The asyncio front-end plus its worker fleet."""

    def __init__(
        self,
        config: TierConfig,
        extra_env: dict[str, str] | None = None,
    ) -> None:
        self.config = config
        self.extra_env = dict(extra_env or {})
        os.makedirs(config.run_dir, exist_ok=True)
        self.store = ModelStore(os.path.join(config.run_dir, "store"))
        # The tier's single shadow validator: only what this host swaps
        # in is ever published to the store the workers attach to.
        self.host = ModelHost(config.model_path)
        if self.host.active.selector is not None:
            self.store.publish(
                self.host.active.selector, self.host.active.sha256
            )
        self.ring = HashRing()
        self.workers: dict[str, WorkerHandle] = {}
        self.target_workers = max(
            config.min_workers, min(config.workers, config.max_workers)
        )
        self._next_worker = 0
        self._conn_counter = 0
        #: Names of workers that died unretired, awaiting respawn under
        #: the same ring position (bounded key movement).
        self._lost_names: set[str] = set()
        #: Serializes fleet changes: the reader-loop respawn trigger and
        #: the periodic scale loop must not both spawn for one death.
        self._capacity_lock: asyncio.Lock | None = None
        self._stopping = False
        self._stopped = False
        self._stop_event = asyncio.Event()
        self._scale_task: asyncio.Task | None = None
        self.started_at = time.monotonic()
        # Tier counters; `routed == completed + worker_lost` is the
        # reconciliation the chaos drill asserts.
        self.n_routed = 0
        self.n_completed = 0
        self.n_worker_lost = 0
        self.n_respawned = 0
        self.n_rebalanced = 0
        self.n_timeouts = 0

    # -- worker lifecycle ---------------------------------------------------

    def _worker_command(self, name: str, socket_path: str) -> list[str]:
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--model",
            self.config.model_path,
            "--socket",
            socket_path,
            "--worker-store",
            self.store.root,
            "--worker-id",
            name,
            *self.config.worker_args,
        ]

    async def _spawn_worker(self, name: str | None = None) -> WorkerHandle:
        """Boot one worker process and connect to its socket."""
        if name is None:
            name = f"w{self._next_worker}"
            self._next_worker += 1
        socket_path = os.path.join(self.config.run_dir, f"{name}.sock")
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        handle = WorkerHandle(name, socket_path)
        handle.proc = subprocess.Popen(
            self._worker_command(name, socket_path),
            env={**os.environ, **self.extra_env},
            stdin=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + self.config.boot_timeout_seconds
        while True:
            try:
                reader, writer = await asyncio.open_unix_connection(
                    socket_path
                )
                break
            except (OSError, ValueError):
                if handle.proc.poll() is not None:
                    raise TierError(
                        f"worker {name} exited with "
                        f"{handle.proc.returncode} before serving"
                    )
                if time.monotonic() > deadline:
                    handle.kill()
                    raise TierError(
                        f"worker {name} did not open {socket_path} within "
                        f"{self.config.boot_timeout_seconds}s"
                    )
                await asyncio.sleep(0.05)
        handle.reader, handle.writer = reader, writer
        handle.reader_task = asyncio.ensure_future(self._reader_loop(handle))
        self.workers[name] = handle
        self.ring.add(name)
        self.n_rebalanced += 1
        TELEMETRY.inc("serving.rebalanced")
        TELEMETRY.gauge_set("serving.workers", float(len(self.workers)))
        return handle

    async def _reader_loop(self, handle: WorkerHandle) -> None:
        """Match one worker's response lines FIFO against its in-flight."""
        try:
            while True:
                line = await handle.reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:  # pragma: no cover - defensive
                    response = invalid_response(
                        "internal_error",
                        f"worker {handle.name} sent an unparseable response",
                    )
                if handle.pending:
                    pend = handle.pending.popleft()
                    if not pend.future.done():
                        pend.future.set_result(response)
                    handle.n_answered += 1
        except (ConnectionError, OSError):  # pragma: no cover - defensive
            pass
        finally:
            self._flush_worker(handle)
            if not self._stopping and not handle.retiring:
                self._lost_names.add(handle.name)
                asyncio.ensure_future(self._ensure_capacity())

    def _flush_worker(self, handle: WorkerHandle) -> None:
        """Synchronously fail everything in flight on a gone worker.

        Runs in one event-loop step (no awaits), so a dispatcher either
        enqueued before the flush — and is answered here — or observes
        ``handle.closed`` afterwards and never enqueues.  Every response
        is *typed*: predict/feedback still carry a safe format.
        """
        handle.closed = True
        self.workers.pop(handle.name, None)
        if handle.name in self.ring:
            self.ring.remove(handle.name)
            self.n_rebalanced += 1
            TELEMETRY.inc("serving.rebalanced")
        while handle.pending:
            pend = handle.pending.popleft()
            if pend.future.done():
                continue
            if pend.op in ("predict", "feedback"):
                response = fallback_response(
                    self.config.fallback_format,
                    REASON_WORKER_LOST,
                    pend.request_id,
                    worker=handle.name,
                )
            else:
                response = invalid_response(
                    CODE_WORKER_LOST,
                    f"worker {handle.name} died with the request in flight",
                    pend.request_id,
                )
            pend.future.set_result(response)
            if pend.routed:
                self.n_worker_lost += 1
                TELEMETRY.inc("serving.worker_lost")
        if handle.writer is not None:
            handle.writer.close()
        TELEMETRY.gauge_set("serving.workers", float(len(self.workers)))

    async def _ensure_capacity(self) -> None:
        """Spawn (serialized) until the alive count meets the target.

        Lost names are respawned first, and a respawned worker keeps its
        old ring position: the keys that moved off it while it was dead
        move back, and nothing else moves — the bounded-movement half of
        the routing contract.  The lock keeps the reader-loop trigger
        and the scale loop from double-spawning for one death.
        """
        if self._capacity_lock is None:
            self._capacity_lock = asyncio.Lock()
        async with self._capacity_lock:
            while not self._stopping and len(self.workers) < max(
                self.target_workers, self.config.min_workers
            ):
                name = None
                if self._lost_names:
                    name = sorted(self._lost_names)[0]
                    self._lost_names.discard(name)
                try:
                    await self._spawn_worker(name)
                except TierError:  # pragma: no cover - boot env failure
                    return
                if name is not None:
                    self.n_respawned += 1
                    TELEMETRY.inc("serving.respawned")
            # Any leftover lost name is capacity the tier no longer
            # needs (the target shrank while it was down).
            self._lost_names.clear()

    async def _retire_worker(self, handle: WorkerHandle) -> None:
        """Drain one worker, then ask it to shut down."""
        handle.retiring = True
        if handle.name in self.ring:
            self.ring.remove(handle.name)
            self.n_rebalanced += 1
            TELEMETRY.inc("serving.rebalanced")
        deadline = time.monotonic() + self.config.request_timeout_seconds
        while handle.pending and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        self.workers.pop(handle.name, None)
        TELEMETRY.gauge_set("serving.workers", float(len(self.workers)))
        try:
            async with handle.lock:
                if not handle.closed and handle.writer is not None:
                    handle.pending.append(
                        _Pending(
                            asyncio.get_running_loop().create_future(),
                            "shutdown",
                            None,
                        )
                    )
                    handle.writer.write(b'{"op":"shutdown"}\n')
                    await handle.writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - defensive
            pass
        await asyncio.sleep(0.1)
        handle.kill()

    async def _scale_loop(self) -> None:
        """Respawn the dead, watch the model, scale on queue depth."""
        interval = max(self.config.scale_interval_seconds, 0.01)
        while not self._stopping:
            await asyncio.sleep(interval)
            if self._stopping:
                return
            if self.config.hot_reload:
                self.check_reload()
            await self._ensure_capacity()
            alive = [w for w in self.workers.values() if not w.retiring]
            if not alive:
                continue
            depth = sum(w.inflight for w in alive) / len(alive)
            if (
                depth > self.config.scale_up_depth
                and self.target_workers < self.config.max_workers
            ):
                self.target_workers += 1
                TELEMETRY.inc("serving.scale_up")
                await self._ensure_capacity()
            elif (
                depth < self.config.scale_down_depth
                and self.target_workers > self.config.min_workers
                and len(alive) > self.config.min_workers
            ):
                self.target_workers -= 1
                TELEMETRY.inc("serving.scale_down")
                victim = max(
                    alive, key=lambda w: (w.inflight == 0, w.started_at)
                )
                asyncio.ensure_future(self._retire_worker(victim))

    def kill_worker(self, name: str | None = None) -> str | None:
        """SIGKILL one alive worker (chaos hook); returns its name."""
        candidates = sorted(
            w for w in self.workers if not self.workers[w].retiring
        )
        if name is None and candidates:
            name = candidates[0]
        handle = self.workers.get(name) if name else None
        if handle is None:
            return None
        handle.kill()
        return name

    # -- model rollover -----------------------------------------------------

    def check_reload(self) -> str:
        """Watch the model path; publish tier-wide on a validated swap.

        Shadow validation happens exactly once, in this process; the
        store's CURRENT rename is the atomic flip every worker observes.
        """
        event = self.host.check_reload()
        if event == RELOAD_SWAPPED:
            self.store.publish(
                self.host.active.selector, self.host.active.sha256
            )
        return event

    # -- dispatch -----------------------------------------------------------

    def routing_key(self, body: dict, conn_key: str) -> str:
        """Hash key for one request: explicit client id, else connection.

        Keying on the *client* (not the request id) is what keeps a
        client's admission and breaker state on a single worker.
        """
        client = body.get("client")
        if client is not None and not isinstance(client, (dict, list)):
            return f"client:{client}"
        return conn_key

    async def dispatch(self, line: str, conn_key: str) -> dict:
        """One request line in, exactly one response dict out."""
        try:
            request = parse_request_line(line, self.config.max_request_bytes)
        except RequestParseError as exc:
            return exc.response
        if request.op == "shutdown":
            return await self._op_shutdown(request)
        if request.op == "reload":
            return await self._op_reload(request)
        if request.op == "metrics":
            return await self._op_metrics(request)
        if request.op in ("health", "healthz"):
            return await self._op_health(request)
        return await self._route(request, self.routing_key(request.body, conn_key))

    def _unroutable(self, request) -> dict:
        if request.op in ("predict", "feedback"):
            return fallback_response(
                self.config.fallback_format,
                REASON_WORKER_LOST,
                request.id,
                error="no worker available",
            )
        return invalid_response(
            CODE_WORKER_LOST, "no worker available", request.id
        )

    async def _route(self, request, key: str) -> dict:
        """Consistent-hash route one request; never hangs, never raises."""
        trace_id = new_trace_id()
        deadline = time.monotonic() + self.config.boot_timeout_seconds
        while True:
            try:
                name = self.ring.assign(key)
            except LookupError:
                name = None
            handle = self.workers.get(name) if name is not None else None
            if handle is not None and not handle.retiring and not handle.closed:
                with TELEMETRY.span(
                    "serving.route",
                    trace=trace_id,
                    worker=handle.name,
                    op=request.op,
                ):
                    response = await self._forward(
                        handle, request, trace_id, routed=True
                    )
                # None = the worker vanished between selection and
                # enqueue; nothing was sent — re-route this request.
                if response is not None:
                    self.n_routed += 1
                    TELEMETRY.inc("serving.routed")
                    lost = (
                        response.get("reason") == REASON_WORKER_LOST
                        or response.get("code") == CODE_WORKER_LOST
                    )
                    if not lost:
                        # Losses were counted by the flush, so the books
                        # balance: routed == completed + worker_lost.
                        self.n_completed += 1
                    return response
            if self._stopping or time.monotonic() > deadline:
                return self._unroutable(request)
            await asyncio.sleep(0.02)

    async def _forward(
        self,
        handle: WorkerHandle,
        request,
        trace_id: str,
        routed: bool = False,
    ):
        """Send one request down a worker connection and await its answer.

        Returns ``None`` if the worker closed before the request could
        be enqueued (caller re-routes).  A timeout kills the worker:
        FIFO matching cannot survive a skipped response, so a wedged
        worker is converted into a dead one, whose in-flight requests
        all get typed answers.
        """
        body = dict(request.body)
        body["_trace"] = trace_id
        payload = (
            json.dumps(body, separators=(",", ":"), default=str) + "\n"
        ).encode("utf-8")
        loop = asyncio.get_running_loop()
        pend = _Pending(
            loop.create_future(), request.op, request.id, routed=routed
        )
        async with handle.lock:
            if handle.closed:
                return None
            handle.pending.append(pend)
            try:
                handle.writer.write(payload)
            except (ConnectionError, OSError):  # pragma: no cover
                if pend in handle.pending:
                    handle.pending.remove(pend)
                return None
        try:
            await handle.writer.drain()
        except (ConnectionError, OSError):
            pass  # the reader loop flushes `pend` with a typed response
        timeout = self.config.request_timeout_seconds
        try:
            return await asyncio.wait_for(
                asyncio.shield(pend.future), timeout if timeout > 0 else None
            )
        except asyncio.TimeoutError:
            self.n_timeouts += 1
            TELEMETRY.inc("serving.worker_timeout")
            handle.kill()  # reader EOF will flush `pend` with worker_lost
            return await pend.future

    async def _fanout(self, op: str) -> dict[str, dict]:
        """Send one tier op to every alive worker; gather by name."""
        handles = [
            w for w in self.workers.values()
            if not w.retiring and not w.closed
        ]
        if not handles:
            return {}

        async def ask(handle: WorkerHandle) -> tuple[str, dict | None]:
            request = parse_request_line(
                json.dumps({"op": op, "id": f"__tier_{op}"})
            )
            response = await self._forward(handle, request, new_trace_id())
            return handle.name, response

        results = await asyncio.gather(*(ask(h) for h in handles))
        return {
            name: response
            for name, response in results
            if isinstance(response, dict)
        }

    # -- tier ops -----------------------------------------------------------

    async def _op_metrics(self, request) -> dict:
        """Tier-wide metrics: every worker's snapshot, merged.

        Counters add, gauges last-write-wins, histograms merge
        bucket-by-bucket (:meth:`MetricsRegistry.merge_snapshot`), so
        ``serving.latency_seconds`` quantiles describe the whole tier —
        not just the worker that happened to answer the socket.
        """
        per_worker = await self._fanout("metrics")
        registry = MetricsRegistry()
        for name in sorted(per_worker):
            snap = per_worker[name].get("metrics")
            if isinstance(snap, dict):
                try:
                    registry.merge_snapshot(snap)
                except ValueError:  # pragma: no cover - defensive
                    continue
        snap = dict(registry.snapshot())
        snap.update(self.tier_metrics())
        snap = {name: snap[name] for name in sorted(snap)}
        quantiles: dict = {}
        latency = snap.get("serving.latency_seconds")
        for q in DEFAULT_QUANTILES:
            est = snapshot_quantile(latency, q) if latency else float("nan")
            quantiles[quantile_key(q)] = (
                round(est * 1e3, 6) if est == est else None
            )
        return ok_response(
            request.id,
            op="metrics",
            workers=len(per_worker),
            quantiles_ms=quantiles,
            metrics=snap,
        )

    def tier_metrics(self) -> dict[str, dict]:
        """The front-end's own instruments, snapshot-shaped."""
        return {
            "serving.workers": {
                "type": "gauge", "value": float(len(self.workers)),
            },
            "serving.routed": {
                "type": "counter", "value": float(self.n_routed),
            },
            "serving.completed": {
                "type": "counter", "value": float(self.n_completed),
            },
            "serving.worker_lost": {
                "type": "counter", "value": float(self.n_worker_lost),
            },
            "serving.respawned": {
                "type": "counter", "value": float(self.n_respawned),
            },
            "serving.rebalanced": {
                "type": "counter", "value": float(self.n_rebalanced),
            },
        }

    async def _op_health(self, request) -> dict:
        """Aggregated liveness: the tier is what the prober asked about."""
        per_worker = await self._fanout(request.op)
        if request.op == "healthz":
            states = {
                name: resp.get("state", "degraded")
                for name, resp in per_worker.items()
            }
            degraded = (
                not states or any(s != "ok" for s in states.values())
            )
            return ok_response(
                request.id,
                op="healthz",
                state="degraded" if degraded else "ok",
                uptime_seconds=round(time.monotonic() - self.started_at, 3),
                workers=len(self.workers),
                worker_states={k: states[k] for k in sorted(states)},
                queue_depth=sum(
                    int(r.get("queue_depth", 0)) for r in per_worker.values()
                ) + sum(w.inflight for w in self.workers.values()),
                routed=self.n_routed,
                worker_lost=self.n_worker_lost,
                respawned=self.n_respawned,
            )
        return ok_response(
            request.id,
            op="health",
            uptime_seconds=round(time.monotonic() - self.started_at, 3),
            model=self.host.snapshot(),
            workers={k: per_worker[k] for k in sorted(per_worker)},
            routed=self.n_routed,
            worker_lost=self.n_worker_lost,
            respawned=self.n_respawned,
            rebalanced=self.n_rebalanced,
        )

    async def _op_reload(self, request) -> dict:
        """Validate once at the front-end, flip every worker atomically."""
        event = self.check_reload()
        per_worker = await self._fanout("reload")
        return ok_response(
            request.id,
            op="reload",
            event=event,
            model=self.host.snapshot(),
            workers={
                name: per_worker[name].get("event")
                for name in sorted(per_worker)
            },
        )

    async def _op_shutdown(self, request) -> dict:
        # Stop routing immediately, but let the accept loop tear the
        # fleet down *after* this response has been written back —
        # otherwise the acknowledgement races the process exit.
        self._stopping = True
        asyncio.get_running_loop().call_later(0.05, self._stop_event.set)
        return ok_response(
            request.id, op="shutdown", workers=len(self.workers)
        )

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Boot the initial fleet and the autoscale loop."""
        await self._ensure_capacity()
        self._scale_task = asyncio.ensure_future(self._scale_loop())

    async def stop(self) -> None:
        """Stop routing, shut every worker down, reap the fleet."""
        if self._stopped:
            return
        self._stopped = True
        self._stopping = True
        if self._scale_task is not None:
            self._scale_task.cancel()
        for handle in list(self.workers.values()):
            try:
                async with handle.lock:
                    if not handle.closed and handle.writer is not None:
                        handle.pending.append(
                            _Pending(
                                asyncio.get_running_loop().create_future(),
                                "shutdown",
                                None,
                            )
                        )
                        handle.writer.write(b'{"op":"shutdown"}\n')
                        await handle.writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        deadline = time.monotonic() + 5.0
        for handle in list(self.workers.values()):
            while (
                handle.proc is not None
                and handle.proc.poll() is None
                and time.monotonic() < deadline
            ):
                await asyncio.sleep(0.05)
            handle.kill()
            self._flush_worker(handle)
        self._stop_event.set()

    async def _serve_client(self, reader, writer) -> None:
        """One JSONL conversation; responses in request order."""
        self._conn_counter += 1
        conn_key = f"conn:{self._conn_counter}"
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", "replace")
                if not text.strip():
                    continue
                response = await self.dispatch(text, conn_key)
                writer.write((encode_response(response) + "\n").encode())
                await writer.drain()
                if self._stopping:
                    break
        except (ConnectionError, OSError):  # pragma: no cover - client gone
            pass
        finally:
            try:
                writer.close()
            except OSError:  # pragma: no cover - defensive
                pass

    async def run_socket(self, socket_path: str) -> int:
        """Serve the tier on a front Unix socket until shutdown."""
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        await self.start()
        server = await asyncio.start_unix_server(
            self._serve_client, path=socket_path
        )
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            await self.stop()
            if os.path.exists(socket_path):
                os.unlink(socket_path)
        return 0

    async def run_stdio(self, instream=None, outstream=None) -> int:
        """Serve the tier over stdin/stdout (one implicit client)."""
        await self.start()
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        protocol = asyncio.StreamReaderProtocol(reader)
        await loop.connect_read_pipe(
            lambda: protocol, instream if instream is not None else sys.stdin
        )
        out = outstream if outstream is not None else sys.stdout
        try:
            while not self._stopping:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", "replace")
                if not text.strip():
                    continue
                response = await self.dispatch(text, "stdio")
                out.write(encode_response(response) + "\n")
                out.flush()
        finally:
            await self.stop()
        return 0


async def drive_tier(
    socket_path: str,
    lines: Iterable[str],
    connections: int = 8,
    actions: dict | None = None,
) -> list[tuple[str, dict]]:
    """Test/bench client: fan ``lines`` over N connections, collect all.

    Lines are dealt round-robin; each connection pipelines its share
    sequentially (the JSONL conversational contract).  Returns
    ``(line, response)`` pairs indexed like ``lines``.  ``actions`` maps
    a tier-wide answered-count to a zero-argument callable fired once
    when that many responses have arrived — how the chaos drill kills a
    worker or swaps the model mid-burst.
    """
    lines = list(lines)
    shares: list[list[tuple[int, str]]] = [
        [] for _ in range(max(1, connections))
    ]
    for i, line in enumerate(lines):
        shares[i % len(shares)].append((i, line))
    results: list[tuple[str, dict] | None] = [None] * len(lines)
    progress = {"answered": 0}
    fired: set[int] = set()

    async def client(share: list[tuple[int, str]]) -> None:
        if not share:
            return
        reader, writer = await asyncio.open_unix_connection(socket_path)
        try:
            for index, line in share:
                writer.write((line.rstrip("\n") + "\n").encode())
                await writer.drain()
                raw = await reader.readline()
                if not raw:
                    raise ConnectionError("tier closed mid-conversation")
                results[index] = (line, json.loads(raw))
                progress["answered"] += 1
                for at in sorted(actions or {}):
                    if at not in fired and progress["answered"] >= at:
                        fired.add(at)
                        actions[at]()
        finally:
            writer.close()

    await asyncio.gather(*(client(share) for share in shares))
    return [r for r in results if r is not None]


__all__ = [
    "ServingTier",
    "TIER_OPS",
    "TierConfig",
    "TierError",
    "WorkerHandle",
    "drive_tier",
]
