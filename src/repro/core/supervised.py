"""Supervised baselines with the paper's hyperparameters (§5.1).

*"We use the scikit-learn library to implement classifiers based on
Decision Tree (DT), Random Forest (RF), Support Vector Machine (SVM),
K-Nearest Neighbors (KNN), and XGBoost models ... For RF, we use 100
estimators with a maximum depth of 6. For XGBoost, we set a learning rate
of 0.1 and the number of rounds to 100."*

Each model couples a classifier with the preprocessing it needs: the
distance/margin-based models (KNN, SVM) reuse the paper's log + min-max
pipeline (without PCA), tree models consume raw features, and the CNN gets
density images (handled in :mod:`repro.experiments.table6`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.pipeline import FeaturePipeline
from repro.ml.base import BaseEstimator, NotFittedError
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.svm import SVC
from repro.ml.tree import DecisionTreeClassifier

#: Model name → (classifier factory, needs feature scaling pipeline).
SUPERVISED_MODELS: dict[str, tuple[Callable[[int], BaseEstimator], bool]] = {
    "DT": (lambda seed: DecisionTreeClassifier(max_depth=10, seed=seed), False),
    "RF": (
        lambda seed: RandomForestClassifier(
            n_estimators=100, max_depth=6, seed=seed
        ),
        False,
    ),
    "SVM": (lambda seed: SVC(C=10.0, kernel="rbf", seed=seed), True),
    "KNN": (lambda seed: KNeighborsClassifier(n_neighbors=5), True),
    "XGBoost": (
        lambda seed: GradientBoostingClassifier(
            n_rounds=100, learning_rate=0.1, max_depth=6, seed=seed
        ),
        False,
    ),
    "LR": (lambda seed: LogisticRegression(max_iter=300), True),
}


class SupervisedFormatSelector(BaseEstimator):
    """One supervised baseline, bundled with its preprocessing."""

    def __init__(self, model: str = "RF", seed: int = 0) -> None:
        if model not in SUPERVISED_MODELS:
            raise ValueError(
                f"unknown model {model!r}; choose from {sorted(SUPERVISED_MODELS)}"
            )
        self.model = model
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SupervisedFormatSelector":
        factory, needs_scaling = SUPERVISED_MODELS[self.model]
        if needs_scaling:
            # Scaling-sensitive models use the paper's transform + min-max
            # stages, without PCA (each supervised method uses "an
            # optimized subset of the features"; full scaled features work
            # best for these).
            self._pipeline = FeaturePipeline(transform="log", n_components=None)
            Xp = self._pipeline.fit(X).transform_features(X)
        else:
            self._pipeline = None
            Xp = np.asarray(X, dtype=np.float64)
        self._clf = factory(self.seed)
        self._clf.fit(Xp, np.asarray(y))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_clf"):
            raise NotFittedError("SupervisedFormatSelector must be fitted")
        Xp = (
            self._pipeline.transform_features(X)
            if self._pipeline is not None
            else np.asarray(X, dtype=np.float64)
        )
        return self._clf.predict(Xp)
