"""Explainability tooling for the semi-supervised selector.

The paper's pitch (§1, §7): the clustering *"separates determining the
similarity between matrices from the selection of the optimal format and
exposes these aspects to the user ... providing explainable
classifications."*  This module turns a fitted selector into human-readable
explanations: why a matrix got its format, what its cluster looks like,
and which features drive each cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.semisupervised import ClusterFormatSelector
from repro.ml.knn import pairwise_sq_dists


@dataclass(frozen=True)
class ClusterProfile:
    """Summary of one cluster over the original (untransformed) features."""

    cluster: int
    size: int
    label: str
    #: feature name -> (min, median, max) over cluster members.
    feature_ranges: dict = field(default_factory=dict)
    #: Names of the features whose cluster distribution deviates most from
    #: the global distribution (z-score of cluster median), descending.
    distinguishing_features: list = field(default_factory=list)


def cluster_profile(
    selector: ClusterFormatSelector,
    cluster: int,
    X: np.ndarray,
    feature_names: list[str],
    top_k: int = 5,
) -> ClusterProfile:
    """Describe a cluster in terms of the raw Table-1 features."""
    selector._require_clustered()
    members = selector.train_assignments_ == cluster
    if not members.any():
        raise ValueError(f"cluster {cluster} has no training members")
    Xc = np.asarray(X, dtype=np.float64)[members]
    ranges = {
        name: (
            float(Xc[:, j].min()),
            float(np.median(Xc[:, j])),
            float(Xc[:, j].max()),
        )
        for j, name in enumerate(feature_names)
    }
    # Rank features by how far the cluster median sits from the global
    # median in robust (MAD) units.
    X_all = np.asarray(X, dtype=np.float64)
    med_all = np.median(X_all, axis=0)
    mad = np.median(np.abs(X_all - med_all), axis=0)
    mad = np.where(mad > 0, mad, 1.0)
    z = np.abs(np.median(Xc, axis=0) - med_all) / mad
    order = np.argsort(z)[::-1][:top_k]
    label = (
        str(selector.cluster_labels_[cluster])
        if hasattr(selector, "cluster_labels_")
        else "<unlabeled>"
    )
    return ClusterProfile(
        cluster=int(cluster),
        size=int(members.sum()),
        label=label,
        feature_ranges=ranges,
        distinguishing_features=[feature_names[i] for i in order],
    )


@dataclass(frozen=True)
class PredictionExplanation:
    cluster: int
    label: str
    distance_to_centroid: float
    cluster_size: int
    cluster_purity_hint: str
    nearest_training_names: list


def explain_prediction(
    selector: ClusterFormatSelector,
    x: np.ndarray,
    training_names: list[str],
    training_labels: np.ndarray | None = None,
    n_neighbors: int = 3,
) -> PredictionExplanation:
    """Explain one prediction: its cluster, the evidence, the neighbours."""
    if not hasattr(selector, "cluster_labels_"):
        raise ValueError("selector clusters must be labeled first")
    x = np.asarray(x, dtype=np.float64).reshape(1, -1)
    z = selector.pipeline_.transform_features(x)
    cluster = int(selector.assign_clusters(x)[0])
    centroid = selector.centroids_[cluster : cluster + 1]
    dist = float(np.sqrt(pairwise_sq_dists(z, centroid)[0, 0]))
    members = np.flatnonzero(selector.train_assignments_ == cluster)
    # Nearest training matrices inside the cluster.
    if members.size:
        d2 = pairwise_sq_dists(z, selector._Z_train[members]).ravel()
        order = members[np.argsort(d2)[:n_neighbors]]
        nearest = [training_names[i] for i in order]
    else:
        nearest = []
    if training_labels is not None and members.size:
        labels = np.asarray(training_labels, dtype=object)[members]
        agreeing = float(np.mean(labels == selector.cluster_labels_[cluster]))
        hint = f"{agreeing:.0%} of {members.size} training members agree"
    else:
        hint = "no labeled members available"
    return PredictionExplanation(
        cluster=cluster,
        label=str(selector.cluster_labels_[cluster]),
        distance_to_centroid=dist,
        cluster_size=int(members.size),
        cluster_purity_hint=hint,
        nearest_training_names=nearest,
    )


def format_explanation(expl: PredictionExplanation) -> str:
    """Render a :class:`PredictionExplanation` as a short report."""
    lines = [
        f"predicted format: {expl.label}",
        f"  cluster #{expl.cluster} ({expl.cluster_size} training matrices, "
        f"{expl.cluster_purity_hint})",
        f"  distance to centroid: {expl.distance_to_centroid:.4f}",
    ]
    if expl.nearest_training_names:
        lines.append(
            "  most similar training matrices: "
            + ", ".join(expl.nearest_training_names)
        )
    return "\n".join(lines)
