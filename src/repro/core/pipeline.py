"""The §4 feature-preprocessing pipeline.

*"a log transform or a square root transform is applied to all features
which have a sparse distribution ... Afterward, min-max scaling is used to
scale each feature to a range of [0, 1] ... We then use Principal Component
Analysis (PCA) to decompose the features to a feature vector of size 8."*

The pipeline is fit once on training features and reused across
architectures — the features, and therefore the transformed space and the
clusters, are architecture-invariant.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import NotFittedError
from repro.ml.pca import PCA
from repro.ml.preprocessing import MinMaxScaler, SparseDistributionTransformer
from repro.obs import TELEMETRY


class FeaturePipeline:
    """transform → scale → project, with each stage optional.

    Parameters
    ----------
    transform
        ``"log"`` (paper default), ``"sqrt"``, or ``None`` to skip — the
        ablation benches toggle this to show the paper's point that naive
        clustering on raw features fails.
    n_components
        PCA output size (paper: 8); ``None`` skips PCA.
    """

    def __init__(
        self,
        transform: str | None = "log",
        n_components: int | None = 8,
        sparse_threshold: float = 5.0,
    ) -> None:
        self.transform = transform
        self.n_components = n_components
        self.sparse_threshold = sparse_threshold

    def fit(self, X: np.ndarray) -> "FeaturePipeline":
        X = np.asarray(X, dtype=np.float64)
        with TELEMETRY.span("pipeline.fit", n_samples=X.shape[0]):
            self._transformer = (
                SparseDistributionTransformer(
                    kind=self.transform, threshold=self.sparse_threshold
                )
                if self.transform is not None
                else None
            )
            stage = X
            if self._transformer is not None:
                with TELEMETRY.span("pipeline.transform"):
                    stage = self._transformer.fit_transform(stage)
            self._scaler = MinMaxScaler()
            with TELEMETRY.span("pipeline.scale"):
                stage = self._scaler.fit_transform(stage)
            self._pca = (
                PCA(self.n_components)
                if self.n_components is not None
                else None
            )
            if self._pca is not None:
                with TELEMETRY.span("pipeline.pca"):
                    self._pca.fit(stage)
            self.n_features_in_ = X.shape[1]
        return self

    def transform_features(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_scaler"):
            raise NotFittedError("FeaturePipeline must be fitted first")
        X = np.asarray(X, dtype=np.float64)
        with TELEMETRY.span("pipeline.transform_features", n_samples=X.shape[0]):
            stage = X
            if self._transformer is not None:
                with TELEMETRY.span("pipeline.transform"):
                    stage = self._transformer.transform(stage)
            with TELEMETRY.span("pipeline.scale"):
                stage = self._scaler.transform(stage)
            if self._pca is not None:
                with TELEMETRY.span("pipeline.pca"):
                    stage = self._pca.transform(stage)
        return stage

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform_features(X)

    @property
    def output_dim(self) -> int:
        if not hasattr(self, "_scaler"):
            raise NotFittedError("FeaturePipeline must be fitted first")
        if self._pca is not None:
            return self._pca.n_components_
        return self.n_features_in_
