"""Regression-based format selection: predict times, pick the argmin.

The quantitative alternative to classification that the paper's related
work requires (§6: *"overhead-conscious format selection ... requires
quantitative rather than qualitative predictions"* [39, 40]).  One
regressor per format learns ``log(time)`` from the Table-1 features; the
selector picks the format with the smallest predicted time, and — unlike
a classifier — can also feed the overhead-conscious decision rule with
predicted per-format times for matrices that were never benchmarked.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import FeaturePipeline
from repro.gpu.kernels import MODELED_FORMATS
from repro.ml.base import BaseEstimator, NotFittedError
from repro.ml.regression import RandomForestRegressor


class RegressionFormatSelector(BaseEstimator):
    """Per-format log-time regressors with argmin selection.

    Parameters
    ----------
    formats
        Formats to model (default: the paper's four).
    n_estimators, max_depth
        Forwarded to each :class:`RandomForestRegressor`.
    """

    def __init__(
        self,
        formats: tuple[str, ...] = MODELED_FORMATS,
        n_estimators: int = 60,
        max_depth: int | None = 10,
        seed: int = 0,
    ) -> None:
        if not formats:
            raise ValueError("formats must be non-empty")
        self.formats = tuple(formats)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed

    def fit(
        self, X: np.ndarray, times: list[dict[str, float]]
    ) -> "RegressionFormatSelector":
        """Fit from per-matrix ``{format: seconds}`` benchmark maps.

        Matrices missing a format (infeasible there) are excluded from
        that format's regressor only.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] != len(times):
            raise ValueError("X and times must be aligned")
        self._pipeline = FeaturePipeline(transform="log", n_components=None)
        Z = self._pipeline.fit(X).transform_features(X)
        self._models: dict[str, RandomForestRegressor] = {}
        for k, fmt in enumerate(self.formats):
            rows = [i for i, t in enumerate(times) if fmt in t]
            if not rows:
                continue
            y = np.log(np.array([times[i][fmt] for i in rows]))
            model = RandomForestRegressor(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                seed=self.seed + k,
            )
            model.fit(Z[rows], y)
            self._models[fmt] = model
        if not self._models:
            raise ValueError("no format had any benchmarked matrix")
        return self

    def predict_times(self, X: np.ndarray) -> dict[str, np.ndarray]:
        """Predicted SpMV seconds per modeled format."""
        if not hasattr(self, "_models"):
            raise NotFittedError(
                "RegressionFormatSelector must be fitted first"
            )
        Z = self._pipeline.transform_features(
            np.asarray(X, dtype=np.float64)
        )
        return {
            fmt: np.exp(model.predict(Z))
            for fmt, model in self._models.items()
        }

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Format with the smallest predicted time per matrix."""
        predictions = self.predict_times(X)
        fmts = list(predictions)
        stacked = np.vstack([predictions[f] for f in fmts])
        winners = np.argmin(stacked, axis=0)
        return np.array([fmts[w] for w in winners], dtype=object)

    def predicted_speedup_over(
        self, X: np.ndarray, baseline: str = "csr"
    ) -> np.ndarray:
        """Predicted time(baseline) / time(best) — the quantitative signal
        the overhead-conscious rule consumes."""
        predictions = self.predict_times(X)
        if baseline not in predictions:
            raise ValueError(f"baseline {baseline!r} not modeled")
        fmts = list(predictions)
        stacked = np.vstack([predictions[f] for f in fmts])
        best = stacked.min(axis=0)
        return predictions[baseline] / best
