"""Benchmark results → labeled learning problems.

A :class:`LabeledDataset` couples the architecture-invariant feature table
with one architecture's best-format labels and per-format times.  The
paper's setup (§5.1, Table 3) needs three of these (one per GPU) plus the
*common subset* of matrices runnable on all three, which backs the
transfer experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.table import FeatureTable
from repro.gpu.kernels import MODELED_FORMATS, parse_op
from repro.gpu.simulator import BenchmarkResult


@dataclass
class LabeledDataset:
    """Feature matrix + best-format labels for one architecture."""

    arch: str
    features: FeatureTable
    #: Best format per matrix, aligned with ``features.names``.
    labels: np.ndarray
    #: Per-matrix {format: seconds} for speedup metrics.
    times: list[dict[str, float]]

    def __post_init__(self) -> None:
        n = len(self.features)
        if self.labels.shape != (n,):
            raise ValueError(
                f"labels shape {self.labels.shape} != ({n},)"
            )
        if len(self.times) != n:
            raise ValueError("times length must match features")

    def __len__(self) -> int:
        return len(self.features)

    @property
    def X(self) -> np.ndarray:
        return self.features.values

    @property
    def names(self) -> list[str]:
        return self.features.names

    def class_distribution(self) -> dict[str, int]:
        """Label counts in Table-3 format order."""
        return {
            fmt: int(np.sum(self.labels == fmt)) for fmt in MODELED_FORMATS
        }

    def subset(self, indices: np.ndarray | list[int]) -> "LabeledDataset":
        indices = list(indices)
        return LabeledDataset(
            arch=self.arch,
            features=self.features.subset(indices),
            labels=self.labels[indices],
            times=[self.times[i] for i in indices],
        )

    def subset_by_names(self, names: list[str]) -> "LabeledDataset":
        index = {n: i for i, n in enumerate(self.names)}
        return self.subset([index[n] for n in names])


def build_labeled_dataset(
    arch: str,
    features: FeatureTable,
    results: list[BenchmarkResult],
) -> LabeledDataset:
    """Assemble the dataset of runnable matrices for one architecture.

    Mirrors §5.1: matrices with any infeasible format on this architecture
    are omitted from this architecture's dataset.
    """
    by_name = {r.name: r for r in results}
    keep: list[int] = []
    labels: list[str] = []
    times: list[dict[str, float]] = []
    for i, name in enumerate(features.names):
        res = by_name.get(name)
        if res is None or not res.runnable:
            continue
        keep.append(i)
        labels.append(res.best_format)
        times.append(dict(res.times))
    if not keep:
        raise ValueError(f"no runnable matrices for architecture {arch!r}")
    return LabeledDataset(
        arch=arch,
        features=features.subset(keep),
        labels=np.asarray(labels, dtype=object),
        times=times,
    )


# ---------------------------------------------------------------------------
# Op-aware labeling: (format, op) compound labels over a mixed campaign
# ---------------------------------------------------------------------------

#: Feature columns appended to the structural table so one model can
#: separate ops: two op indicators plus log2 of the dense-side width
#: (0 for SpMV — it *is* SpMM at k=1 — and 0 for SpGEMM).
OP_FEATURE_NAMES: tuple[str, ...] = (
    "op_is_spmm",
    "op_is_spgemm",
    "op_log2_width",
)


def augment_features_with_op(
    features: FeatureTable, op: str
) -> FeatureTable:
    """One op's copy of the feature table, with op columns appended.

    Row names gain an ``@op`` suffix so copies for different ops stack
    into one table with unique names.
    """
    spec = parse_op(op)
    op_row = np.array(
        [
            1.0 if spec.kind == "spmm" else 0.0,
            1.0 if spec.kind == "spgemm" else 0.0,
            float(np.log2(spec.k)) if spec.kind == "spmm" else 0.0,
        ],
        dtype=np.float64,
    )
    n = len(features)
    return FeatureTable(
        names=[f"{name}@{spec.canonical}" for name in features.names],
        feature_names=list(features.feature_names) + list(OP_FEATURE_NAMES),
        values=np.hstack([features.values, np.tile(op_row, (n, 1))]),
    )


def build_op_labeled_dataset(
    arch: str,
    features: FeatureTable,
    results_by_op: dict[str, list[BenchmarkResult]],
) -> LabeledDataset:
    """Stack per-op labeled copies into one compound-label dataset.

    Each op contributes one op-augmented copy of the (runnable) feature
    rows; labels are the compound ``format@op`` strings, so the selector
    learns a single decision surface over structure × operation.  Ops are
    stacked in sorted order for determinism.
    """
    parts: list[LabeledDataset] = []
    for op in sorted(results_by_op):
        augmented = augment_features_with_op(features, op)
        by_name = {
            f"{r.name}@{r.op}": r for r in results_by_op[op]
        }
        keep: list[int] = []
        labels: list[str] = []
        times: list[dict[str, float]] = []
        for i, name in enumerate(augmented.names):
            res = by_name.get(name)
            if res is None or not res.runnable:
                continue
            keep.append(i)
            labels.append(res.op_label)
            times.append(dict(res.times))
        if not keep:
            continue
        parts.append(
            LabeledDataset(
                arch=arch,
                features=augmented.subset(keep),
                labels=np.asarray(labels, dtype=object),
                times=times,
            )
        )
    if not parts:
        raise ValueError(
            f"no runnable (matrix, op) pairs for architecture {arch!r}"
        )
    return LabeledDataset(
        arch=arch,
        features=FeatureTable(
            names=[n for p in parts for n in p.features.names],
            feature_names=list(parts[0].features.feature_names),
            values=np.vstack([p.features.values for p in parts]),
        ),
        labels=np.concatenate([p.labels for p in parts]),
        times=[t for p in parts for t in p.times],
    )


def common_subset(datasets: dict[str, LabeledDataset]) -> dict[str, LabeledDataset]:
    """Restrict every dataset to the matrices runnable on all architectures.

    §5.1: *"The Common Subset columns indicate the overlapping set of
    matrices that executed successfully on all three GPUs and formed the
    basis of our transfer learning experiments."*
    """
    if not datasets:
        raise ValueError("datasets must be non-empty")
    name_sets = [set(ds.names) for ds in datasets.values()]
    shared = set.intersection(*name_sets)
    if not shared:
        raise ValueError("architectures share no runnable matrices")
    # Keep a deterministic order: the first dataset's ordering.
    first = next(iter(datasets.values()))
    ordered = [n for n in first.names if n in shared]
    return {
        arch: ds.subset_by_names(ordered) for arch, ds in datasets.items()
    }
