"""Benchmark results → labeled learning problems.

A :class:`LabeledDataset` couples the architecture-invariant feature table
with one architecture's best-format labels and per-format times.  The
paper's setup (§5.1, Table 3) needs three of these (one per GPU) plus the
*common subset* of matrices runnable on all three, which backs the
transfer experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.table import FeatureTable
from repro.gpu.kernels import MODELED_FORMATS
from repro.gpu.simulator import BenchmarkResult


@dataclass
class LabeledDataset:
    """Feature matrix + best-format labels for one architecture."""

    arch: str
    features: FeatureTable
    #: Best format per matrix, aligned with ``features.names``.
    labels: np.ndarray
    #: Per-matrix {format: seconds} for speedup metrics.
    times: list[dict[str, float]]

    def __post_init__(self) -> None:
        n = len(self.features)
        if self.labels.shape != (n,):
            raise ValueError(
                f"labels shape {self.labels.shape} != ({n},)"
            )
        if len(self.times) != n:
            raise ValueError("times length must match features")

    def __len__(self) -> int:
        return len(self.features)

    @property
    def X(self) -> np.ndarray:
        return self.features.values

    @property
    def names(self) -> list[str]:
        return self.features.names

    def class_distribution(self) -> dict[str, int]:
        """Label counts in Table-3 format order."""
        return {
            fmt: int(np.sum(self.labels == fmt)) for fmt in MODELED_FORMATS
        }

    def subset(self, indices: np.ndarray | list[int]) -> "LabeledDataset":
        indices = list(indices)
        return LabeledDataset(
            arch=self.arch,
            features=self.features.subset(indices),
            labels=self.labels[indices],
            times=[self.times[i] for i in indices],
        )

    def subset_by_names(self, names: list[str]) -> "LabeledDataset":
        index = {n: i for i, n in enumerate(self.names)}
        return self.subset([index[n] for n in names])


def build_labeled_dataset(
    arch: str,
    features: FeatureTable,
    results: list[BenchmarkResult],
) -> LabeledDataset:
    """Assemble the dataset of runnable matrices for one architecture.

    Mirrors §5.1: matrices with any infeasible format on this architecture
    are omitted from this architecture's dataset.
    """
    by_name = {r.name: r for r in results}
    keep: list[int] = []
    labels: list[str] = []
    times: list[dict[str, float]] = []
    for i, name in enumerate(features.names):
        res = by_name.get(name)
        if res is None or not res.runnable:
            continue
        keep.append(i)
        labels.append(res.best_format)
        times.append(dict(res.times))
    if not keep:
        raise ValueError(f"no runnable matrices for architecture {arch!r}")
    return LabeledDataset(
        arch=arch,
        features=features.subset(keep),
        labels=np.asarray(labels, dtype=object),
        times=times,
    )


def common_subset(datasets: dict[str, LabeledDataset]) -> dict[str, LabeledDataset]:
    """Restrict every dataset to the matrices runnable on all architectures.

    §5.1: *"The Common Subset columns indicate the overlapping set of
    matrices that executed successfully on all three GPUs and formed the
    basis of our transfer learning experiments."*
    """
    if not datasets:
        raise ValueError("datasets must be non-empty")
    name_sets = [set(ds.names) for ds in datasets.values()]
    shared = set.intersection(*name_sets)
    if not shared:
        raise ValueError("architectures share no runnable matrices")
    # Keep a deterministic order: the first dataset's ordering.
    first = next(iter(datasets.values()))
    ordered = [n for n in first.names if n in shared]
    return {
        arch: ds.subset_by_names(ordered) for arch, ds in datasets.items()
    }
