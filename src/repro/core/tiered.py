"""Tiered low-latency format selection (ROADMAP item 4).

Table 8 of the paper shows feature extraction — not model inference —
dominates online selection cost.  The :class:`TieredSelector` exploits
that: stage 1 classifies with only the *cheap* feature subset
(:data:`~repro.features.extract.CHEAP_FEATURE_NAMES` — dimensions, nnz,
and row-length moments, all derivable from the row-length histogram
alone, with no diagonal / warp / HYB analysis), and escalates to the
full 21-feature pipeline only when the cheap-space nearest-centroid
answer is ambiguous.

Determinism contract (DESIGN §13):

- Stage 1 answers only when its *margin* — the cheap-space distance gap
  between the nearest centroid and the nearest centroid carrying a
  **different** format label — strictly exceeds the calibrated
  threshold.  The margin is a pure function of the cheap features and
  the frozen model arrays, so the escalate/answer decision is
  reproducible for a given model + threshold.
- Whenever stage 1 abstains, the tier-2 answer runs the frozen model's
  own ``assign`` on the full Table-1 vector: tiered output is
  bit-identical to the full pipeline's output on every escalated
  request, and the streaming tier-2 path feeds the exact canonical
  coordinate set (streaming features ≡ ``compute_stats``).

Stage-1 geometry: the frozen centroids live in the post-PCA space, so
they are mapped back to the scaled feature space (the orthogonal
reconstruction ``Z @ components + mean``) and restricted to the cheap
columns; probe vectors apply the frozen per-column shift/log/sqrt and
min-max scaling to the same columns.  Calibration picks the smallest
threshold at which every seeded probe that stage 1 would answer agrees
with the full pipeline — models whose cheap-space geometry cannot
separate formats simply escalate everything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.core.deploy import FrozenSelector
from repro.features.extract import (
    CHEAP_FEATURE_INDICES,
    cheap_features_from_lengths,
    features_from_stats,
)
from repro.features.stats import StreamingStats, compute_stats
from repro.formats.coo import COOMatrix
from repro.formats.io import (
    DEFAULT_CHUNK_NNZ,
    DEFAULT_POLICY,
    ReadPolicy,
    assemble_matrix,
    read_matrix_market_streaming,
)
from repro.ml.knn import pairwise_sq_dists
from repro.obs import TELEMETRY

#: Default number of jittered probes per calibration run.
DEFAULT_PROBES = 256

#: Default probe jitter, in units of the [0, 1] scaled feature box.
DEFAULT_JITTER = 0.15


@dataclass(frozen=True)
class TierDecision:
    """Outcome of one tiered selection."""

    #: Recommended storage format.
    format: str
    #: 1 = answered from cheap features, 2 = full pipeline.
    tier: int
    #: Stage-1 confidence margin observed for this request.
    margin: float
    #: Centroid index backing the answer (cheap-space centroid for
    #: tier 1, the frozen model's own assignment for tier 2).
    centroid: int


def reconstructed_centroids(frozen: FrozenSelector) -> np.ndarray:
    """Frozen centroids mapped back to the scaled feature space.

    With PCA enabled this is the orthogonal reconstruction; without it
    the centroids already live in scaled space.  Clipped to the scaler's
    [0, 1] box, where every transformed probe also lives.
    """
    C = np.asarray(frozen.centroids, dtype=np.float64)
    if frozen.pca_components is not None:
        C = C @ frozen.pca_components + frozen.pca_mean
    return np.clip(C, 0.0, 1.0)


def calibration_probes(
    frozen: FrozenSelector,
    n_probes: int = DEFAULT_PROBES,
    seed: int = 0,
    jitter: float = DEFAULT_JITTER,
) -> np.ndarray:
    """Seeded synthetic feature vectors around the model's centroid cloud.

    Probes are drawn in the scaled space (reconstructed centroids plus
    Gaussian jitter, clipped to the unit box) and mapped back through
    the inverse of the frozen preprocessing, so both the cheap stage and
    the full pipeline can consume them as raw Table-1 vectors.  Purely
    deterministic for a given (model, seed).
    """
    C = reconstructed_centroids(frozen)
    k = C.shape[0]
    rng = np.random.default_rng(seed)
    reps = max(1, -(-n_probes // k))
    pts = np.tile(C, (reps, 1))[:n_probes]
    pts = np.clip(pts + rng.normal(0.0, jitter, pts.shape), 0.0, 1.0)
    scaled = np.vstack([C, pts])
    raw = scaled * frozen.scaler_span + frozen.scaler_min
    if frozen.transform_kind is not None:
        cols = frozen.transform_apply
        if cols.any():
            if frozen.transform_kind == "log":
                raw[:, cols] = np.expm1(raw[:, cols])
            else:
                raw[:, cols] = np.square(raw[:, cols])
        raw = raw + frozen.transform_shift
    return raw


class TieredSelector:
    """Cheap-first selector over a :class:`FrozenSelector`.

    ``margin_threshold`` is the stage-1 confidence bar: a request is
    answered at tier 1 only when its margin *strictly* exceeds it, so
    the default ``0.0`` escalates exact cheap-space ties and nothing
    else.  Use :meth:`calibrate` to raise the bar until stage 1 agrees
    with the full pipeline on a seeded probe cloud.
    """

    def __init__(
        self, frozen: FrozenSelector, margin_threshold: float = 0.0
    ) -> None:
        if not math.isfinite(margin_threshold) or margin_threshold < 0:
            raise ValueError(
                f"margin_threshold must be finite and >= 0, "
                f"got {margin_threshold}"
            )
        self.frozen = frozen
        self.margin_threshold = float(margin_threshold)
        self._idx = list(CHEAP_FEATURE_INDICES)
        self._cheap_centroids = reconstructed_centroids(frozen)[:, self._idx]
        self.requests = 0
        self.escalations = 0

    # -- calibration ----------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        frozen: FrozenSelector,
        n_probes: int = DEFAULT_PROBES,
        seed: int = 0,
        jitter: float = DEFAULT_JITTER,
    ) -> "TieredSelector":
        """Build a selector whose threshold silences every probe miss.

        The threshold is the largest stage-1 margin observed on a probe
        where the cheap answer disagrees with the full pipeline (0.0
        when they never disagree); since tier 1 requires ``margin >
        threshold``, every disagreeing probe would have escalated.
        """
        selector = cls(frozen, margin_threshold=0.0)
        probes = calibration_probes(frozen, n_probes, seed, jitter)
        full = frozen.predict(probes)
        labels, _, margins = selector._stage1(
            probes[:, selector._idx]
        )
        disagree = (labels != full) & np.isfinite(margins)
        if disagree.any():
            selector.margin_threshold = float(margins[disagree].max())
        return selector

    # -- stage-1 machinery ----------------------------------------------

    def _transform_cheap(self, X: np.ndarray) -> np.ndarray:
        """The frozen preprocessing restricted to the cheap columns."""
        f = self.frozen
        idx = self._idx
        out = np.asarray(X, dtype=np.float64)
        if f.transform_kind is not None:
            out = np.maximum(out - f.transform_shift[idx], 0.0)
            cols = f.transform_apply[idx]
            if cols.any():
                out = out.copy()
                if f.transform_kind == "log":
                    out[:, cols] = np.log1p(out[:, cols])
                else:
                    out[:, cols] = np.sqrt(out[:, cols])
        return np.clip(
            (out - f.scaler_min[idx]) / f.scaler_span[idx], 0.0, 1.0
        )

    def _stage1(
        self, X_cheap: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Labels, centroid indices, and margins for raw cheap vectors."""
        Z = self._transform_cheap(X_cheap)
        d2 = pairwise_sq_dists(Z, self._cheap_centroids)
        best = np.argmin(d2, axis=1)
        d_best = np.sqrt(np.maximum(d2[np.arange(d2.shape[0]), best], 0.0))
        labels = self.frozen.centroid_labels[best]
        same = (
            self.frozen.centroid_labels[None, :] == labels[:, None]
        )
        d2_other = np.where(same, np.inf, d2)
        d_other = np.sqrt(np.maximum(d2_other.min(axis=1), 0.0))
        return labels, best, d_other - d_best

    def stage1_decision(self, cheap_vec: np.ndarray) -> TierDecision | None:
        """Tier-1 decision for one raw cheap vector; None = escalate."""
        decision, _ = self.stage1_with_margin(cheap_vec)
        return decision

    def stage1_with_margin(
        self, cheap_vec: np.ndarray
    ) -> tuple[TierDecision | None, float]:
        """(tier-1 decision or None, observed margin) for one cheap vector."""
        labels, best, margins = self._stage1(cheap_vec[None, :])
        margin = float(margins[0])
        if margin > self.margin_threshold:
            decision = TierDecision(
                format=str(labels[0]),
                tier=1,
                margin=margin,
                centroid=int(best[0]),
            )
            return decision, margin
        return None, margin

    # -- selection ------------------------------------------------------

    @property
    def escalation_rate(self) -> float:
        return self.escalations / self.requests if self.requests else 0.0

    def account(self, decision: TierDecision) -> TierDecision:
        """Record a decision in the selector's counters and telemetry.

        ``select``/``select_stream`` call this themselves; external
        drivers that run the stages manually (the serving layer) call it
        once per successfully answered request.
        """
        self.requests += 1
        if decision.tier == 2:
            self.escalations += 1
            TELEMETRY.inc("select.escalations")
        else:
            TELEMETRY.inc("select.tier1_answers")
        TELEMETRY.inc("select.requests")
        TELEMETRY.gauge_set("select.escalation_rate", self.escalation_rate)
        return decision

    def _escalate_features(self, vec: np.ndarray, margin: float) -> TierDecision:
        centroid = int(self.frozen.assign(vec[None, :])[0])
        return TierDecision(
            format=str(self.frozen.centroid_labels[centroid]),
            tier=2,
            margin=margin,
            centroid=centroid,
        )

    def select(self, matrix: COOMatrix) -> TierDecision:
        """Tiered selection for an in-memory canonical COO matrix."""
        with TELEMETRY.span("select.tier1"):
            nrows, ncols = matrix.shape
            cheap = cheap_features_from_lengths(
                nrows, ncols, matrix.nnz, matrix.row_lengths()
            )
            decision, margin = self.stage1_with_margin(cheap)
        if decision is not None:
            return self.account(decision)
        with TELEMETRY.span("select.escalate"):
            decision = self._escalate_features(
                features_from_stats(compute_stats(matrix)), margin
            )
        return self.account(decision)

    def select_stream(
        self,
        source: str | Path | TextIO,
        policy: ReadPolicy = DEFAULT_POLICY,
        chunk_nnz: int = DEFAULT_CHUNK_NNZ,
    ) -> TierDecision:
        """Tiered selection straight from a MatrixMarket stream.

        Tier 1 needs only the row-length histogram, accumulated while
        parsing.  8-byte row-major coordinate keys are retained per
        chunk so an escalation replays the (deduplicated) coordinate
        set into the full :class:`StreamingStats` kernel — the file is
        read exactly once either way, and the escalated answer is
        bit-identical to the full pipeline's.
        """
        with TELEMETRY.span("select.tier1"):
            stream = read_matrix_market_streaming(source, policy, chunk_nnz)
            header = next(stream)
            nrows, ncols = header.nrows, header.ncols
            matrix = None
            margin = float("nan")
            if nrows * ncols > np.iinfo(np.int64).max:
                # Keys would overflow: materialize (forged-header scale
                # only; a sane ReadPolicy rejects at the size line).
                chunks = ([], [], [])
                for block in stream:
                    for store, arr in zip(chunks, block):
                        store.append(arr)
                matrix = assemble_matrix(header, *chunks)
                decision = None
            else:
                mirror = header.symmetry in ("symmetric", "skew-symmetric")
                row_counts = np.zeros(nrows, dtype=np.int64)
                nnz = 0
                key_chunks: list[np.ndarray] = []
                for block in stream:
                    row_counts += np.bincount(block.rows, minlength=nrows)
                    nnz += block.rows.shape[0]
                    key_chunks.append(block.rows * ncols + block.cols)
                    if mirror:
                        off = block.rows != block.cols
                        m_rows, m_cols = block.cols[off], block.rows[off]
                        row_counts += np.bincount(m_rows, minlength=nrows)
                        nnz += m_rows.shape[0]
                        key_chunks.append(m_rows * ncols + m_cols)
                keys = (
                    np.concatenate(key_chunks)
                    if len(key_chunks) != 1
                    else key_chunks[0]
                )
                keys.sort()
                if keys.size and (keys[1:] == keys[:-1]).any():
                    # Canonicalisation collapses duplicates: recount the
                    # histogram from the deduplicated key set.
                    mask = np.empty(keys.shape[0], dtype=bool)
                    mask[0] = True
                    np.not_equal(keys[1:], keys[:-1], out=mask[1:])
                    keys = keys[mask]
                    row_counts = np.bincount(
                        keys // ncols, minlength=nrows
                    )
                    nnz = int(keys.shape[0])
                cheap = cheap_features_from_lengths(
                    nrows, ncols, nnz, row_counts
                )
                decision, margin = self.stage1_with_margin(cheap)
        if decision is not None:
            return self.account(decision)
        with TELEMETRY.span("select.escalate"):
            if matrix is not None:
                stats = compute_stats(matrix)
                margin = float("nan")
            else:
                acc = StreamingStats(nrows, ncols)
                for lo in range(0, keys.shape[0], chunk_nnz):
                    k = keys[lo : lo + chunk_nnz]
                    r = k // ncols
                    acc.update(r, k - r * ncols)
                stats = acc.finalize()
            decision = self._escalate_features(
                features_from_stats(stats), margin
            )
        return self.account(decision)
