"""Overhead-conscious format selection (related-work extension).

The paper's related work (§6) highlights *"overhead-conscious format
selection which requires quantitative rather than qualitative
predictions"* (Zhao et al. [39], Zhou et al. [40]): switching away from the
format a matrix is already stored in only pays off if the per-SpMV saving,
times the number of SpMV calls the application will make, exceeds the
conversion cost.

This module layers that amortisation logic over any qualitative selector,
using the Table-8 conversion-cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.stats import MatrixStats
from repro.gpu.arch import GPUArchitecture
from repro.gpu.kernels import feasible_times, predict_times
from repro.gpu.simulator import CONVERSION_COST_RELATIVE


@dataclass(frozen=True)
class OverheadDecision:
    """Outcome of an amortisation-aware selection."""

    chosen_format: str
    qualitative_best: str
    conversion_cost: float
    per_spmv_saving: float
    breakeven_calls: float

    @property
    def converted(self) -> bool:
        return self.chosen_format != "csr"


def conversion_cost_seconds(fmt: str, csr_spmv_time: float) -> float:
    """Conversion cost from CSR into ``fmt`` (Table 8's relative model)."""
    try:
        return CONVERSION_COST_RELATIVE[fmt] * csr_spmv_time
    except KeyError:
        raise ValueError(f"unknown format {fmt!r}") from None


def select_with_overhead(
    stats: MatrixStats,
    arch: GPUArchitecture,
    n_spmv_calls: int,
    base_format: str = "csr",
) -> OverheadDecision:
    """Pick the format minimising conversion + ``n_spmv_calls`` × SpMV time.

    ``base_format`` is the format the matrix is currently stored in
    (conversion-free); matrices are read from .mtx files into CSR in the
    paper's pipeline.
    """
    if n_spmv_calls < 1:
        raise ValueError("n_spmv_calls must be >= 1")
    times = feasible_times(predict_times(stats, arch))
    if base_format not in times:
        raise ValueError(
            f"base format {base_format!r} infeasible for this matrix"
        )
    csr_time = times.get("csr", times[base_format])
    qualitative_best = min(times, key=times.__getitem__)

    def total(fmt: str) -> float:
        conv = (
            0.0
            if fmt == base_format
            else conversion_cost_seconds(fmt, csr_time)
        )
        return conv + n_spmv_calls * times[fmt]

    chosen = min(times, key=total)
    conv_cost = (
        0.0 if chosen == base_format else conversion_cost_seconds(chosen, csr_time)
    )
    saving = times[base_format] - times[chosen]
    breakeven = conv_cost / saving if saving > 0 else float("inf")
    return OverheadDecision(
        chosen_format=chosen,
        qualitative_best=qualitative_best,
        conversion_cost=conv_cost,
        per_spmv_saving=saving,
        breakeven_calls=breakeven,
    )
