"""The semi-supervised format selector: clustering + per-cluster labeling.

§4 of the paper: matrices are clustered in the preprocessed feature space
(clusters are architecture-invariant); each cluster is then assigned an
optimal format using benchmark labels of (a fraction of) its members.  The
nine evaluated combinations pair {K-Means, Mean-Shift, Birch} with the
labelers {VOTE, LR, RF}.

Cluster labeling semantics:

- **VOTE**: majority vote over the benchmarked members of the cluster
  (§4: *"it is beneficial to benchmark multiple matrices from each cluster
  and apply a decision rule such as majority voting"*).
- **LR / RF**: a logistic-regression / random-forest model fit on the
  benchmarked matrices' (transformed features → label) pairs predicts the
  label at each cluster centroid.

Either way the final model is a cluster → format table: prediction for a
new matrix is the label of the nearest cluster, which is what makes the
approach explainable and cheaply re-labelable on a new architecture.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.pipeline import FeaturePipeline
from repro.ml.base import NotFittedError
from repro.ml.cluster import Birch, KMeans, MeanShift
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression

LABELERS = ("vote", "lr", "rf")
CLUSTERERS = ("kmeans", "meanshift", "birch")


def make_clusterer(
    method: str, n_clusters: int | None = None, seed: int = 0
):
    """Instantiate one of the paper's three clustering algorithms.

    Mean-Shift ignores ``n_clusters`` (it finds the count itself — the
    paper's Table 4 reports its NC as an output, not an input).
    """
    method = method.lower()
    if method == "kmeans":
        if n_clusters is None:
            raise ValueError("kmeans requires n_clusters")
        return KMeans(n_clusters=n_clusters, seed=seed)
    if method == "meanshift":
        return MeanShift(seed=seed)
    if method == "birch":
        if n_clusters is None:
            raise ValueError("birch requires n_clusters")
        # Threshold tuned for the [0,1]-scaled PCA space of the pipeline.
        return Birch(n_clusters=n_clusters, threshold=0.1, seed=seed)
    raise ValueError(f"unknown clustering method {method!r}")


class ClusterFormatSelector:
    """Semi-supervised sparse-format selector.

    Parameters
    ----------
    clusterer
        ``"kmeans"`` / ``"meanshift"`` / ``"birch"``, or any fitted-like
        object exposing ``fit(X)``, ``predict(X)`` and ``labels_``.
    labeler
        ``"vote"`` (majority), ``"lr"`` or ``"rf"``.
    n_clusters
        Cluster count for K-Means/Birch (the NC column of Tables 4/5).
    pipeline
        Feature preprocessing; defaults to the paper's log + min-max +
        PCA-8 pipeline.
    """

    def __init__(
        self,
        clusterer: str = "kmeans",
        labeler: str = "vote",
        n_clusters: int | None = 100,
        pipeline: FeaturePipeline | None = None,
        seed: int = 0,
    ) -> None:
        if isinstance(clusterer, str) and clusterer not in CLUSTERERS:
            raise ValueError(
                f"unknown clusterer {clusterer!r}; choose from {CLUSTERERS}"
            )
        if labeler not in LABELERS:
            raise ValueError(
                f"unknown labeler {labeler!r}; choose from {LABELERS}"
            )
        self.clusterer = clusterer
        self.labeler = labeler
        self.n_clusters = n_clusters
        self.pipeline = pipeline
        self.seed = seed

    # -- stage 1: architecture-invariant clustering -----------------------

    def fit_clusters(self, X: np.ndarray) -> "ClusterFormatSelector":
        """Preprocess features and form clusters (no labels involved)."""
        self.pipeline_ = (
            self.pipeline if self.pipeline is not None else FeaturePipeline()
        )
        if not hasattr(self.pipeline_, "_scaler"):
            self.pipeline_.fit(X)
        Z = self.pipeline_.transform_features(X)
        if isinstance(self.clusterer, str):
            self._cluster_model = make_clusterer(
                self.clusterer, self.n_clusters, self.seed
            )
        else:
            self._cluster_model = self.clusterer
        self._cluster_model.fit(Z)
        self.train_assignments_ = np.asarray(self._cluster_model.labels_)
        # Cluster-id range must cover everything predict() can return —
        # not just ids seen in training (K-Means may keep a centroid whose
        # members were all reassigned in the final iteration).
        model = self._cluster_model
        if hasattr(model, "n_clusters_"):
            self.n_clusters_ = int(model.n_clusters_)
        elif hasattr(model, "cluster_centers_"):
            self.n_clusters_ = int(model.cluster_centers_.shape[0])
        else:
            self.n_clusters_ = int(self.train_assignments_.max()) + 1
        # Centroids in the transformed space (for the LR/RF labelers and
        # for explainability).
        self.centroids_ = np.vstack(
            [
                Z[self.train_assignments_ == c].mean(axis=0)
                if np.any(self.train_assignments_ == c)
                else np.zeros(Z.shape[1])
                for c in range(self.n_clusters_)
            ]
        )
        self._Z_train = Z
        return self

    # -- stage 2: platform-specific cluster labeling ------------------------

    def label_clusters(
        self,
        y: np.ndarray,
        benchmarked: np.ndarray | None = None,
        source_y: np.ndarray | None = None,
    ) -> "ClusterFormatSelector":
        """Assign each cluster its optimal format.

        ``y`` holds the benchmark labels of the training matrices;
        ``benchmarked`` is a boolean mask (or index array) of the matrices
        whose labels may be used — the transfer workflow passes only the
        re-benchmarked fraction.  Unbenchmarked labels are ignored unless
        ``source_y`` is given, in which case every matrix additionally
        contributes its *source-architecture* label: the transfer case
        combines full source evidence with partial target evidence.
        """
        self._require_clustered()
        y = np.asarray(y, dtype=object)
        if y.shape[0] != self.train_assignments_.shape[0]:
            raise ValueError("y must align with the clustered training set")
        mask = np.ones(y.shape[0], dtype=bool)
        if benchmarked is not None:
            benchmarked = np.asarray(benchmarked)
            if benchmarked.dtype == bool:
                mask = benchmarked.copy()
            else:
                mask = np.zeros(y.shape[0], dtype=bool)
                mask[benchmarked] = True
        if source_y is not None:
            source_y = np.asarray(source_y, dtype=object)
            if source_y.shape != y.shape:
                raise ValueError("source_y must align with y")
        if not mask.any() and source_y is None:
            raise ValueError("at least one benchmarked matrix is required")
        # Assemble the evidence as (assignment, label) pairs: target labels
        # for the benchmarked matrices plus (optionally) source labels for
        # everything.
        parts_assign = [self.train_assignments_[mask]]
        parts_y = [y[mask]]
        parts_Z = [self._Z_train[mask]]
        if source_y is not None:
            parts_assign.append(self.train_assignments_)
            parts_y.append(source_y)
            parts_Z.append(self._Z_train)
        ev_assign = np.concatenate(parts_assign)
        ev_y = np.concatenate(parts_y)
        global_majority = Counter(ev_y.tolist()).most_common(1)[0][0]
        if self.labeler == "vote":
            labels = self._label_by_vote(ev_assign, ev_y, global_majority)
        else:
            ev_Z = np.vstack(parts_Z)
            labels = self._label_by_model(ev_Z, ev_y)
        self.cluster_labels_ = np.asarray(labels, dtype=object)
        return self

    def _label_by_vote(
        self, assignments: np.ndarray, y: np.ndarray, fallback: str
    ) -> list[str]:
        labels: list[str] = []
        for c in range(self.n_clusters_):
            members = assignments == c
            if members.any():
                labels.append(
                    Counter(y[members].tolist()).most_common(1)[0][0]
                )
            else:
                # No benchmarked member: fall back to the global majority
                # (equivalent to the paper's CSR-overprediction behaviour).
                labels.append(fallback)
        return labels

    def _label_by_model(self, Z: np.ndarray, y: np.ndarray) -> list[str]:
        model = self._make_label_model()
        model.fit(Z, y)
        return list(model.predict(self.centroids_))

    def _make_label_model(self):
        if self.labeler == "lr":
            return LogisticRegression(max_iter=200)
        return RandomForestClassifier(
            n_estimators=100, max_depth=6, seed=self.seed
        )

    # -- convenience: both stages at once -----------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ClusterFormatSelector":
        return self.fit_clusters(X).label_clusters(y)

    # -- inference --------------------------------------------------------

    def assign_clusters(self, X: np.ndarray) -> np.ndarray:
        self._require_clustered()
        Z = self.pipeline_.transform_features(X)
        return np.asarray(self._cluster_model.predict(Z))

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "cluster_labels_"):
            raise NotFittedError("clusters have not been labeled yet")
        clusters = self.assign_clusters(X)
        return self.cluster_labels_[clusters]

    def benchmarking_budget(self, per_cluster: int = 1) -> int:
        """Matrices to benchmark on a new platform (§4: ideally one per
        cluster)."""
        self._require_clustered()
        return self.n_clusters_ * per_cluster

    def sample_for_benchmarking(
        self, per_cluster: int = 1, seed: int = 0
    ) -> np.ndarray:
        """Pick ``per_cluster`` training indices from each cluster.

        This is the transfer recipe of §4: benchmark a few matrices per
        cluster on the new platform, then relabel the (unchanged) clusters.
        """
        self._require_clustered()
        rng = np.random.default_rng(seed)
        chosen: list[int] = []
        for c in range(self.n_clusters_):
            members = np.flatnonzero(self.train_assignments_ == c)
            if members.size == 0:
                continue
            take = min(per_cluster, members.size)
            chosen.extend(rng.choice(members, size=take, replace=False))
        return np.asarray(sorted(chosen))

    def _require_clustered(self) -> None:
        if not hasattr(self, "train_assignments_"):
            raise NotFittedError("fit_clusters must be called first")
