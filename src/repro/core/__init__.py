"""The paper's contribution: semi-supervised sparse-format selection.

- :mod:`repro.core.pipeline` — §4 feature preprocessing (log/sqrt +
  min-max + PCA-8).
- :mod:`repro.core.labeling` — benchmark results → labeled datasets,
  Table-3 style distributions, common subsets.
- :mod:`repro.core.semisupervised` — cluster + per-cluster labeler
  (VOTE / LR / RF): the nine combinations of Table 4.
- :mod:`repro.core.supervised` — the supervised baselines with the
  paper's hyperparameters.
- :mod:`repro.core.transfer` — cross-architecture evaluation with
  0/25/50% retraining (Tables 5 and 7).
- :mod:`repro.core.purity`, :mod:`repro.core.explain` — cluster quality
  and explainability tooling.
- :mod:`repro.core.speedup` — GT/CSR speedups and the slowdown
  Threshold metric of Table 6.
- :mod:`repro.core.online`, :mod:`repro.core.overhead` — the paper's
  future-work extensions (online clustering, overhead-conscious
  selection).
"""

from repro.core.labeling import LabeledDataset, build_labeled_dataset
from repro.core.pipeline import FeaturePipeline
from repro.core.semisupervised import ClusterFormatSelector
from repro.core.supervised import SUPERVISED_MODELS, SupervisedFormatSelector
from repro.core.purity import cluster_purity, purity_report
from repro.core.tiered import TierDecision, TieredSelector

__all__ = [
    "ClusterFormatSelector",
    "FeaturePipeline",
    "LabeledDataset",
    "SUPERVISED_MODELS",
    "SupervisedFormatSelector",
    "TierDecision",
    "TieredSelector",
    "build_labeled_dataset",
    "cluster_purity",
    "purity_report",
]
