"""Online / incremental format selection (the paper's future work).

§7: *"the semi-supervised approach would also be suitable for an online
learning scenario where new matrices are added, and new clusters are
formed continuously. However, this would require an incremental clustering
algorithm."*

:class:`OnlineFormatSelector` implements that scenario: matrices arrive
one at a time with (optionally) an observed best format from the SpMV runs
the application is executing anyway.  A new point joins the nearest
cluster if it is within ``radius``; otherwise it seeds a new cluster.
Cluster labels are running majority votes, and clusters whose label
distribution turns impure are split.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import FeaturePipeline
from repro.ml.knn import pairwise_sq_dists
from repro.obs import TELEMETRY


@dataclass
class _OnlineCluster:
    centroid: np.ndarray
    count: int = 0
    label_counts: Counter = field(default_factory=Counter)
    #: Recent member points, kept for splitting.
    members: list = field(default_factory=list)

    @property
    def label(self) -> str | None:
        if not self.label_counts:
            return None
        return self.label_counts.most_common(1)[0][0]

    @property
    def purity(self) -> float:
        total = sum(self.label_counts.values())
        if total == 0:
            return 1.0
        return self.label_counts.most_common(1)[0][1] / total


class OnlineFormatSelector:
    """Incremental cluster-based selector.

    Parameters
    ----------
    pipeline
        A *fitted* :class:`FeaturePipeline` (fit it on an initial batch —
        the transform must be stable while streaming).
    radius
        Join distance in the transformed space.
    min_purity, min_split_size
        A cluster observed with purity below ``min_purity`` and at least
        ``min_split_size`` labeled members is split into per-label
        subclusters — the incremental analogue of refining NC.
    default_format
        Prediction for points that land in an unlabeled cluster.
    """

    def __init__(
        self,
        pipeline: FeaturePipeline,
        radius: float = 0.15,
        min_purity: float = 0.7,
        min_split_size: int = 8,
        memory: int = 64,
        default_format: str = "csr",
    ) -> None:
        if not hasattr(pipeline, "_scaler"):
            raise ValueError("pipeline must be fitted before streaming")
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.pipeline = pipeline
        self.radius = radius
        self.min_purity = min_purity
        self.min_split_size = min_split_size
        self.memory = memory
        self.default_format = default_format
        self.clusters: list[_OnlineCluster] = []
        self.n_observed = 0
        self.n_splits = 0

    # -- streaming interface -----------------------------------------------

    def _transform_one(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64).reshape(1, -1)
        if not np.all(np.isfinite(arr)):
            # A NaN/inf feature vector would poison every centroid it
            # touches (running means never recover); reject it loudly.
            TELEMETRY.inc("online.rejected")
            TELEMETRY.inc("online.rejected.nonfinite")
            raise ValueError("non-finite feature vector rejected")
        return self.pipeline.transform_features(arr)[0]

    def _nearest(self, z: np.ndarray) -> tuple[int, float]:
        centroids = np.vstack([c.centroid for c in self.clusters])
        d2 = pairwise_sq_dists(z[None, :], centroids).ravel()
        i = int(np.argmin(d2))
        return i, float(np.sqrt(d2[i]))

    def predict_one(self, x: np.ndarray) -> str:
        """Predict without updating state."""
        if not self.clusters:
            return self.default_format
        z = self._transform_one(x)
        i, _ = self._nearest(z)
        return self.clusters[i].label or self.default_format

    def nearest_distance(self, x: np.ndarray) -> float:
        """Distance from ``x`` to the nearest online centroid.

        ``inf`` while no clusters exist.  The serving layer surfaces
        this as a drift signal: traffic consistently far from every
        online centroid means the stream has moved away from what the
        frozen model was trained on.
        """
        if not self.clusters:
            return float("inf")
        z = self._transform_one(x)
        _, dist = self._nearest(z)
        return dist

    def observe(self, x: np.ndarray, best_format: str | None = None) -> str:
        """Ingest one matrix; returns the (pre-update) prediction.

        ``best_format`` is the label learned from the application's own
        SpMV runs; pass ``None`` for unlabeled traffic (it still shapes
        the clusters).

        Telemetry (enabled mode): ``online.observations`` counts every
        call, ``online.assignments`` the points absorbed by an existing
        cluster, ``online.clusters_created`` the points that seeded a new
        one, ``online.relabels`` the updates that flipped a cluster's
        majority label, and the per-update latency goes to the
        ``online.update_seconds`` histogram.
        """
        observing = TELEMETRY.enabled
        t0 = time.perf_counter() if observing else 0.0
        z = self._transform_one(x)
        if self.clusters:
            i, dist = self._nearest(z)
            prediction = self.clusters[i].label or self.default_format
        else:
            i, dist = -1, np.inf
            prediction = self.default_format
        if dist <= self.radius:
            cluster = self.clusters[i]
            label_before = cluster.label
            # Running-mean centroid update.
            cluster.count += 1
            cluster.centroid += (z - cluster.centroid) / cluster.count
            if len(cluster.members) < self.memory:
                cluster.members.append((z, best_format))
            if best_format is not None:
                cluster.label_counts[best_format] += 1
                if observing:
                    TELEMETRY.inc("online.labeled_updates")
                    if (
                        label_before is not None
                        and cluster.label != label_before
                    ):
                        TELEMETRY.inc("online.relabels")
                self._maybe_split(i)
            if observing:
                TELEMETRY.inc("online.assignments")
        else:
            fresh = _OnlineCluster(centroid=z.copy(), count=1)
            fresh.members.append((z, best_format))
            if best_format is not None:
                fresh.label_counts[best_format] += 1
            self.clusters.append(fresh)
            if observing:
                TELEMETRY.inc("online.clusters_created")
        self.n_observed += 1
        if observing:
            TELEMETRY.inc("online.observations")
            TELEMETRY.observe(
                "online.update_seconds", time.perf_counter() - t0
            )
        return prediction

    def _maybe_split(self, index: int) -> None:
        cluster = self.clusters[index]
        labeled = [m for m in cluster.members if m[1] is not None]
        if (
            len(labeled) < self.min_split_size
            or cluster.purity >= self.min_purity
        ):
            return
        # Split into one subcluster per label among the remembered members.
        by_label: dict[str, list[np.ndarray]] = {}
        for z, lab in labeled:
            by_label.setdefault(lab, []).append(z)
        if len(by_label) < 2:
            return
        replacements: list[_OnlineCluster] = []
        for lab, points in by_label.items():
            pts = np.vstack(points)
            sub = _OnlineCluster(
                centroid=pts.mean(axis=0), count=len(points)
            )
            sub.label_counts[lab] = len(points)
            sub.members = [(p, lab) for p in points]
            replacements.append(sub)
        self.clusters.pop(index)
        self.clusters.extend(replacements)
        self.n_splits += 1
        TELEMETRY.inc("online.splits")

    # -- summaries ---------------------------------------------------------

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def label_distribution(self) -> Counter:
        """Counts of cluster labels (None for unlabeled clusters)."""
        return Counter(c.label for c in self.clusters)
