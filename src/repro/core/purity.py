"""Cluster purity: the paper's quality measure for format clusters.

§4: *"purity(c) = max_f count(c, f) / |c| ... For effectively using
clustering for format selection, we need to create clusters with high
purity."*
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np


def cluster_purity(labels: np.ndarray, assignments: np.ndarray) -> float:
    """Sample-weighted mean purity over all clusters.

    Equals the accuracy an oracle per-cluster labeler would reach, i.e.
    the upper bound on VOTE performance (§4's worked example).
    """
    labels = np.asarray(labels, dtype=object)
    assignments = np.asarray(assignments)
    if labels.shape != assignments.shape:
        raise ValueError("labels and assignments must be aligned")
    if labels.shape[0] == 0:
        raise ValueError("empty clustering")
    correct = 0
    for c in np.unique(assignments):
        members = labels[assignments == c]
        correct += Counter(members.tolist()).most_common(1)[0][1]
    return correct / labels.shape[0]


@dataclass(frozen=True)
class ClusterSummary:
    cluster: int
    size: int
    purity: float
    majority_format: str
    label_counts: dict


def purity_report(
    labels: np.ndarray, assignments: np.ndarray
) -> list[ClusterSummary]:
    """Per-cluster purity breakdown, largest clusters first."""
    labels = np.asarray(labels, dtype=object)
    assignments = np.asarray(assignments)
    out: list[ClusterSummary] = []
    for c in np.unique(assignments):
        members = labels[assignments == c]
        counts = Counter(members.tolist())
        top_format, top_count = counts.most_common(1)[0]
        out.append(
            ClusterSummary(
                cluster=int(c),
                size=int(members.shape[0]),
                purity=top_count / members.shape[0],
                majority_format=str(top_format),
                label_counts=dict(counts),
            )
        )
    out.sort(key=lambda s: -s.size)
    return out
