"""Cross-architecture transfer evaluation (Tables 5 and 7).

Protocol (§5.2/§5.3): models are built from the *source* architecture's
labels over the common-subset training split, then evaluated on the
*target* architecture's labels over the held-out test split, after
re-benchmarking 0%, 25% or 50% of the training matrices on the target.

- **Semi-supervised** (Table 5): the clusters — formed from architecture-
  invariant features — are kept; only the cluster labels are recomputed,
  using target labels for the re-benchmarked fraction and source labels
  for the rest.
- **Supervised** (Table 7): the classifier is retrained on the training
  features whose labels are the source architecture's, with the
  re-benchmarked fraction replaced by target labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.labeling import LabeledDataset
from repro.core.semisupervised import ClusterFormatSelector
from repro.core.speedup import SpeedupMetrics, speedup_metrics
from repro.core.supervised import SupervisedFormatSelector
from repro.ml.metrics import accuracy_score, f1_macro, matthews_corrcoef

#: The paper's retraining fractions.
RETRAIN_FRACTIONS = (0.0, 0.25, 0.5)


@dataclass(frozen=True)
class TransferScores:
    accuracy: float
    f1: float
    mcc: float
    speedups: SpeedupMetrics | None = None


def _score(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    times: list[dict[str, float]] | None,
) -> TransferScores:
    return TransferScores(
        accuracy=accuracy_score(y_true, y_pred),
        f1=f1_macro(y_true, y_pred),
        mcc=matthews_corrcoef(y_true, y_pred),
        speedups=speedup_metrics(y_pred, times) if times is not None else None,
    )


def _retrain_mask(
    n: int, fraction: float, y_stratify: np.ndarray, seed: int
) -> np.ndarray:
    """Boolean mask of training matrices re-benchmarked on the target."""
    mask = np.zeros(n, dtype=bool)
    if fraction <= 0:
        return mask
    rng = np.random.default_rng(seed)
    for cls in np.unique(y_stratify):
        members = np.flatnonzero(y_stratify == cls)
        rng.shuffle(members)
        k = int(round(fraction * members.shape[0]))
        mask[members[:k]] = True
    return mask


def mixed_labels(
    source_labels: np.ndarray,
    target_labels: np.ndarray,
    retrain_mask: np.ndarray,
) -> np.ndarray:
    """Source labels with the re-benchmarked fraction replaced by target's."""
    mixed = np.asarray(source_labels, dtype=object).copy()
    mixed[retrain_mask] = np.asarray(target_labels, dtype=object)[retrain_mask]
    return mixed


def transfer_semisupervised(
    selector: ClusterFormatSelector,
    source: LabeledDataset,
    target: LabeledDataset,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    retrain_fraction: float,
    seed: int = 0,
    with_speedups: bool = False,
) -> TransferScores:
    """One transfer cell of Table 5.

    ``source`` and ``target`` must be common-subset datasets (same
    matrices in the same order).
    """
    _check_aligned(source, target)
    Xtr = source.X[train_idx]
    selector.fit_clusters(Xtr)
    mask = _retrain_mask(
        len(train_idx), retrain_fraction, source.labels[train_idx], seed
    )
    # Full source evidence plus the re-benchmarked target fraction.
    selector.label_clusters(
        target.labels[train_idx],
        benchmarked=mask,
        source_y=source.labels[train_idx],
    )
    pred = selector.predict(target.X[test_idx])
    times = [target.times[i] for i in test_idx] if with_speedups else None
    return _score(target.labels[test_idx], pred, times)


def transfer_supervised(
    model_name: str,
    source: LabeledDataset,
    target: LabeledDataset,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    retrain_fraction: float,
    seed: int = 0,
    with_speedups: bool = True,
) -> TransferScores:
    """One transfer cell of Table 7.

    The training set is the source-labeled training split concatenated
    with the re-benchmarked ``retrain_fraction`` of it carrying target
    labels (so 25/50% retraining also grows the training set, as the
    paper's Table-9 training times show).
    """
    _check_aligned(source, target)
    mask = _retrain_mask(
        len(train_idx), retrain_fraction, source.labels[train_idx], seed
    )
    X_train, y_train = transfer_training_set(
        source, target, train_idx, mask
    )
    model = SupervisedFormatSelector(model_name, seed=seed)
    model.fit(X_train, y_train)
    pred = model.predict(target.X[test_idx])
    times = [target.times[i] for i in test_idx] if with_speedups else None
    return _score(target.labels[test_idx], pred, times)


def transfer_training_set(
    source: LabeledDataset,
    target: LabeledDataset,
    train_idx: np.ndarray,
    retrain_mask: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated (features, labels) for supervised transfer training."""
    X_src = source.X[train_idx]
    y_src = np.asarray(source.labels[train_idx], dtype=object)
    if retrain_mask.any():
        X_tgt = source.X[train_idx][retrain_mask]
        y_tgt = np.asarray(target.labels[train_idx], dtype=object)[retrain_mask]
        return np.vstack([X_src, X_tgt]), np.concatenate([y_src, y_tgt])
    return X_src, y_src


def _check_aligned(source: LabeledDataset, target: LabeledDataset) -> None:
    if source.names != target.names:
        raise ValueError(
            "transfer requires common-subset datasets with aligned matrices"
        )
