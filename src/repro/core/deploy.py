"""Deployable frozen selectors: the paper's "train once, deploy multiple
times" requirement (§1, requirement 2).

A fitted :class:`~repro.core.semisupervised.ClusterFormatSelector` holds
live clustering objects; :func:`freeze` distils it to the minimum needed
for inference — the fitted preprocessing arrays plus a centroid table with
per-centroid format labels — which serialises to a single ``.npz`` file
and reloads anywhere NumPy runs.

Because the centroids are architecture-invariant, *one* frozen file can
carry labels for several architectures: :meth:`FrozenSelector.relabel`
swaps the label table without touching the centroids, which is exactly
the paper's porting story.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.pipeline import FeaturePipeline
from repro.core.semisupervised import ClusterFormatSelector
from repro.ml.knn import pairwise_sq_dists
from repro.ml.linalg import rs_matmul_t
from repro.ml.pca import PCA
from repro.ml.preprocessing import MinMaxScaler, SparseDistributionTransformer
from repro.obs import TELEMETRY

_FORMAT_VERSION = 1


class ModelFormatError(ValueError):
    """A frozen-selector ``.npz`` artifact is structurally invalid.

    Raised by :meth:`FrozenSelector.load` when the file is unreadable,
    misses required arrays, carries an unsupported format version, or
    holds arrays of the wrong dtype/shape — previously such files
    surfaced as a cryptic ``KeyError`` deep inside ``transform``.  The
    serving layer's hot-reload validator keys its quarantine decisions
    off this type.
    """


def _require_array(
    data, key: str, ndim: int, kind: str = "f"
) -> np.ndarray:
    """Fetch ``key`` from an npz mapping, checking rank and dtype kind."""
    if key not in data:
        raise ModelFormatError(f"model file missing required array {key!r}")
    arr = data[key]
    if arr.ndim != ndim:
        raise ModelFormatError(
            f"model array {key!r} must be {ndim}-D, got {arr.ndim}-D"
        )
    if kind == "f":
        if arr.dtype.kind not in "fiu":
            raise ModelFormatError(
                f"model array {key!r} must be numeric, got dtype {arr.dtype}"
            )
        if not np.all(np.isfinite(arr)):
            raise ModelFormatError(f"model array {key!r} has non-finite values")
    elif kind == "U" and arr.dtype.kind not in "UO":
        raise ModelFormatError(
            f"model array {key!r} must hold strings, got dtype {arr.dtype}"
        )
    return arr


@dataclass
class FrozenSelector:
    """Inference-only selector: preprocessing arrays + labeled centroids."""

    # preprocessing (None members = stage disabled)
    transform_kind: str | None
    transform_shift: np.ndarray | None
    transform_apply: np.ndarray | None
    scaler_min: np.ndarray
    scaler_span: np.ndarray
    pca_mean: np.ndarray | None
    pca_components: np.ndarray | None
    # centroid table
    centroids: np.ndarray
    #: Format label of the cluster each centroid belongs to.
    centroid_labels: np.ndarray

    def __post_init__(self) -> None:
        if self.centroids.ndim != 2:
            raise ValueError("centroids must be 2-D")
        if self.centroid_labels.shape[0] != self.centroids.shape[0]:
            raise ValueError("centroid_labels must align with centroids")

    # -- inference ---------------------------------------------------------

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = X
        if self.transform_kind is not None:
            out = np.maximum(out - self.transform_shift, 0.0)
            cols = self.transform_apply
            if cols.any():
                if self.transform_kind == "log":
                    out = out.copy()
                    out[:, cols] = np.log1p(out[:, cols])
                else:
                    out = out.copy()
                    out[:, cols] = np.sqrt(out[:, cols])
        out = np.clip((out - self.scaler_min) / self.scaler_span, 0.0, 1.0)
        if self.pca_components is not None:
            # Row-stable projection: batch and single-row calls must
            # produce bit-identical vectors (DESIGN §11).
            out = rs_matmul_t(out - self.pca_mean, self.pca_components)
        return out

    def assign(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid index for each sample."""
        Z = self.transform(X)
        return np.argmin(pairwise_sq_dists(Z, self.centroids), axis=1)

    def nearest_distance(self, X: np.ndarray) -> np.ndarray:
        """Euclidean distance from each sample to its nearest centroid.

        The serving layer's out-of-distribution guard compares this
        against :meth:`centroid_scale` — a matrix far from *every*
        centroid is outside the training distribution and its
        nearest-centroid label is a guess, not a recommendation.
        """
        Z = self.transform(X)
        d2 = np.min(pairwise_sq_dists(Z, self.centroids), axis=1)
        return np.sqrt(np.maximum(d2, 0.0))

    def centroid_scale(self) -> float:
        """Median nearest-neighbour distance among the centroids.

        A model-intrinsic length scale for distance thresholds: points
        within a few multiples of it sit inside the centroid cloud.
        ``inf`` for single-centroid models (no scale to speak of).
        """
        if self.n_centroids < 2:
            return float("inf")
        d2 = pairwise_sq_dists(self.centroids, self.centroids)
        np.fill_diagonal(d2, np.inf)
        return float(np.median(np.sqrt(d2.min(axis=1))))

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not TELEMETRY.enabled:
            return self.centroid_labels[self.assign(X)]
        t0 = time.perf_counter()
        out = self.centroid_labels[self.assign(X)]
        TELEMETRY.observe("deploy.predict_seconds", time.perf_counter() - t0)
        TELEMETRY.inc("deploy.predictions", out.shape[0])
        return out

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction; bit-identical to :meth:`predict` per row.

        The whole inference chain (shift/clip, min-max scale, PCA
        projection, nearest-centroid argmin) runs on elementwise ops and
        row-stable kernels, so stacking inputs cannot change any label.
        Zero-row batches are answered with an empty label array.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            return np.empty(0, dtype=object)
        return self.predict(X)

    @property
    def n_centroids(self) -> int:
        return int(self.centroids.shape[0])

    def relabel(self, centroid_labels: np.ndarray) -> "FrozenSelector":
        """New frozen selector with swapped labels (porting to a new GPU)."""
        labels = np.asarray(centroid_labels, dtype=object)
        if labels.shape[0] != self.n_centroids:
            raise ValueError(
                f"expected {self.n_centroids} labels, got {labels.shape[0]}"
            )
        return FrozenSelector(
            transform_kind=self.transform_kind,
            transform_shift=self.transform_shift,
            transform_apply=self.transform_apply,
            scaler_min=self.scaler_min,
            scaler_span=self.scaler_span,
            pca_mean=self.pca_mean,
            pca_components=self.pca_components,
            centroids=self.centroids,
            centroid_labels=labels,
        )

    # -- serialisation --------------------------------------------------

    def save(self, path: str | Path) -> None:
        arrays: dict[str, np.ndarray] = {
            "version": np.array([_FORMAT_VERSION]),
            "scaler_min": self.scaler_min,
            "scaler_span": self.scaler_span,
            "centroids": self.centroids,
            "centroid_labels": self.centroid_labels.astype("U8"),
        }
        if self.transform_kind is not None:
            arrays["transform_kind"] = np.array([self.transform_kind])
            arrays["transform_shift"] = self.transform_shift
            arrays["transform_apply"] = self.transform_apply
        if self.pca_components is not None:
            arrays["pca_mean"] = self.pca_mean
            arrays["pca_components"] = self.pca_components
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "FrozenSelector":
        """Load and structurally validate a frozen selector.

        Raises :class:`ModelFormatError` for any artifact problem other
        than a missing file (which stays ``FileNotFoundError`` so
        callers can distinguish "not deployed yet" from "corrupt").
        """
        try:
            npz = np.load(path, allow_pickle=False)
        except FileNotFoundError:
            raise
        except Exception as exc:
            raise ModelFormatError(
                f"unreadable model file {path!s}: {exc}"
            ) from exc
        with npz as data:
            if "version" not in data:
                raise ModelFormatError("model file missing version marker")
            version = int(data["version"][0])
            if version != _FORMAT_VERSION:
                raise ModelFormatError(
                    f"unsupported frozen-selector version {version}"
                )
            scaler_min = _require_array(data, "scaler_min", ndim=1)
            scaler_span = _require_array(data, "scaler_span", ndim=1)
            n_features = scaler_min.shape[0]
            if scaler_span.shape != scaler_min.shape:
                raise ModelFormatError(
                    "scaler_min and scaler_span shapes differ: "
                    f"{scaler_min.shape} vs {scaler_span.shape}"
                )
            centroids = _require_array(data, "centroids", ndim=2)
            labels = _require_array(data, "centroid_labels", ndim=1, kind="U")
            if labels.shape[0] != centroids.shape[0]:
                raise ModelFormatError(
                    f"{centroids.shape[0]} centroids but "
                    f"{labels.shape[0]} centroid labels"
                )
            has_transform = "transform_kind" in data
            has_pca = "pca_components" in data
            if has_transform:
                transform_kind = str(data["transform_kind"][0])
                if transform_kind not in ("log", "sqrt"):
                    raise ModelFormatError(
                        f"unknown transform kind {transform_kind!r}"
                    )
                transform_shift = _require_array(data, "transform_shift", ndim=1)
                transform_apply = _require_array(
                    data, "transform_apply", ndim=1, kind="any"
                )
                if (
                    transform_shift.shape[0] != n_features
                    or transform_apply.shape[0] != n_features
                ):
                    raise ModelFormatError(
                        "transform arrays do not match the feature count"
                    )
            if has_pca:
                pca_components = _require_array(data, "pca_components", ndim=2)
                pca_mean = _require_array(data, "pca_mean", ndim=1)
                if pca_components.shape[1] != n_features:
                    raise ModelFormatError(
                        f"pca_components expects "
                        f"{pca_components.shape[1]} features, scaler has "
                        f"{n_features}"
                    )
                if pca_mean.shape[0] != n_features:
                    raise ModelFormatError(
                        "pca_mean does not match the feature count"
                    )
                inference_dim = pca_components.shape[0]
            else:
                inference_dim = n_features
            if centroids.shape[1] != inference_dim:
                raise ModelFormatError(
                    f"centroids are {centroids.shape[1]}-D but the "
                    f"pipeline produces {inference_dim}-D vectors"
                )
            return cls(
                transform_kind=(
                    str(data["transform_kind"][0]) if has_transform else None
                ),
                transform_shift=(
                    data["transform_shift"] if has_transform else None
                ),
                transform_apply=(
                    data["transform_apply"].astype(bool)
                    if has_transform
                    else None
                ),
                scaler_min=scaler_min,
                scaler_span=scaler_span,
                pca_mean=data["pca_mean"] if has_pca else None,
                pca_components=data["pca_components"] if has_pca else None,
                centroids=centroids,
                centroid_labels=labels.astype(object),
            )


#: Format recommended when no model is usable.  CSR is the safe default:
#: every kernel library ships it, and it is the paper's baseline format.
DEFAULT_FALLBACK_FORMAT = "csr"


@dataclass
class FallbackSelector:
    """Graceful-degradation wrapper around :class:`FrozenSelector`.

    Deployment must keep answering even when the model artifact is
    missing, truncated, or incompatible: a wrong-but-safe format costs
    some SpMV throughput, while a crashed selector costs the whole
    application.  :meth:`load` therefore never raises — on any model
    problem it returns a degraded selector that recommends
    ``fallback_format`` (CSR by default) and records why.  A predict-time
    failure likewise degrades that call instead of propagating.

    Telemetry: ``deploy.fallback_loads`` counts degraded loads,
    ``deploy.fallback_predictions`` counts samples answered by the
    fallback rather than the model, and ``deploy.fallback_cause.<cause>``
    breaks both down by *why* (``missing_model`` / ``model_format`` /
    ``load_error`` / ``degraded_model`` / ``predict_error``) so the
    serving circuit breaker's metrics and predict's agree on the cause
    taxonomy.
    """

    selector: FrozenSelector | None
    fallback_format: str = DEFAULT_FALLBACK_FORMAT
    #: Why the model is unusable (``None`` when healthy).
    error: str | None = None
    #: Machine-readable cause tag matching ``error`` (``None`` when healthy).
    cause: str | None = None

    @classmethod
    def load(
        cls,
        path: str | Path,
        fallback_format: str = DEFAULT_FALLBACK_FORMAT,
    ) -> "FallbackSelector":
        """Load a frozen selector, degrading (never raising) on failure."""
        try:
            return cls(
                selector=FrozenSelector.load(path),
                fallback_format=fallback_format,
            )
        except Exception as exc:
            if isinstance(exc, FileNotFoundError):
                cause = "missing_model"
            elif isinstance(exc, ModelFormatError):
                cause = "model_format"
            else:
                cause = "load_error"
            TELEMETRY.inc("deploy.fallback_loads")
            TELEMETRY.inc(f"deploy.fallback_cause.{cause}")
            return cls(
                selector=None,
                fallback_format=fallback_format,
                error=f"{type(exc).__name__}: {exc}",
                cause=cause,
            )

    @property
    def degraded(self) -> bool:
        return self.selector is None

    def _fallback(self, n: int, cause: str) -> np.ndarray:
        TELEMETRY.inc("deploy.fallback_predictions", n)
        TELEMETRY.inc(f"deploy.fallback_cause.{cause}", n)
        return np.array([self.fallback_format] * n, dtype=object)

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self.selector is None:
            return self._fallback(X.shape[0], self.cause or "degraded_model")
        try:
            return self.selector.predict(X)
        except Exception as exc:
            self.error = f"{type(exc).__name__}: {exc}"
            self.cause = "predict_error"
            return self._fallback(X.shape[0], "predict_error")

    def predict_one(self, x: np.ndarray) -> str:
        """Single-sample convenience used by the CLI."""
        return str(self.predict(np.atleast_2d(x))[0])

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction with the same degradation semantics.

        Bit-identical to :meth:`predict` per row when healthy; on a
        degraded model or a predict-time failure the whole batch falls
        back, exactly as the single path would for each row.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            return np.empty(0, dtype=object)
        return self.predict(X)


def freeze(selector: ClusterFormatSelector) -> FrozenSelector:
    """Distil a fitted, labeled selector into a :class:`FrozenSelector`.

    Works for all three clustering algorithms: K-Means and Mean-Shift
    expose their centroids directly; Birch is flattened to its leaf
    subcluster centroids, each carrying its global cluster's label — the
    nearest-subcluster rule Birch itself uses for prediction.
    """
    if not hasattr(selector, "cluster_labels_"):
        raise ValueError("selector must be fitted and labeled before freezing")
    pipe = selector.pipeline_
    model = selector._cluster_model
    if hasattr(model, "subcluster_centers_"):  # Birch
        centroids = model.subcluster_centers_
        labels = selector.cluster_labels_[model.subcluster_labels_]
    else:  # KMeans / MeanShift
        centroids = model.cluster_centers_
        labels = selector.cluster_labels_
    transformer: SparseDistributionTransformer | None = pipe._transformer
    pca: PCA | None = pipe._pca
    scaler: MinMaxScaler = pipe._scaler
    return FrozenSelector(
        transform_kind=transformer.kind if transformer is not None else None,
        transform_shift=(
            transformer.shift_.copy() if transformer is not None else None
        ),
        transform_apply=(
            transformer.apply_.copy() if transformer is not None else None
        ),
        scaler_min=scaler.min_.copy(),
        scaler_span=scaler.span_.copy(),
        pca_mean=pca.mean_.copy() if pca is not None else None,
        pca_components=(
            pca.components_.copy() if pca is not None else None
        ),
        centroids=np.asarray(centroids, dtype=np.float64).copy(),
        centroid_labels=np.asarray(labels, dtype=object).copy(),
    )


def rebuild_pipeline(frozen: FrozenSelector) -> FeaturePipeline:
    """Reconstruct a FeaturePipeline equivalent to the frozen arrays.

    Used by tests to cross-check the frozen transform, and by the
    serving layer's feedback path to seed an
    :class:`~repro.core.online.OnlineFormatSelector` from a frozen
    model's preprocessing (the online selector needs a fitted pipeline).
    """
    pipe = FeaturePipeline(
        transform=frozen.transform_kind,
        n_components=(
            frozen.pca_components.shape[0]
            if frozen.pca_components is not None
            else None
        ),
    )
    if frozen.transform_kind is not None:
        tr = SparseDistributionTransformer(kind=frozen.transform_kind)
        tr.shift_ = frozen.transform_shift
        tr.apply_ = frozen.transform_apply
        pipe._transformer = tr
    else:
        pipe._transformer = None
    scaler = MinMaxScaler()
    scaler.min_ = frozen.scaler_min
    scaler.max_ = frozen.scaler_min + frozen.scaler_span
    scaler.span_ = frozen.scaler_span
    pipe._scaler = scaler
    if frozen.pca_components is not None:
        pca = PCA(frozen.pca_components.shape[0])
        pca.mean_ = frozen.pca_mean
        pca.components_ = frozen.pca_components
        pca.n_components_ = frozen.pca_components.shape[0]
        pipe._pca = pca
    else:
        pipe._pca = None
    pipe.n_features_in_ = frozen.scaler_min.shape[0]
    return pipe


#: Backwards-compatible alias (the helper predates its public promotion).
_rebuild_pipeline = rebuild_pipeline
