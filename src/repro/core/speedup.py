"""Speedup metrics of Table 6: GT, CSR, and the slowdown Threshold.

§5.3: *"the GT column shows the speedup from the model predictions
compared to an oracle scheme, which always makes the correct prediction.
Consequently, all entries are 1 or lower. The CSR column shows the speedup
achieved over the strategy of always using the CSR format as the default.
Values in both columns represent the geometric mean over all the matrices.
The column Threshold shows the number of matrices that experience a
significant slowdown of ≥1.5X over the CSR baseline due to
mispredictions."*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Table 6's slowdown threshold.
SLOWDOWN_THRESHOLD = 1.5


@dataclass(frozen=True)
class SpeedupMetrics:
    gt_speedup: float
    csr_speedup: float
    threshold_count: int


def _geomean(values: np.ndarray) -> float:
    return float(np.exp(np.mean(np.log(values))))


def speedup_metrics(
    predictions: np.ndarray,
    times: list[dict[str, float]],
    threshold: float = SLOWDOWN_THRESHOLD,
) -> SpeedupMetrics:
    """Compute GT/CSR speedups and the slowdown count.

    ``times[i]`` maps each feasible format of matrix ``i`` to its measured
    SpMV time.  A prediction of an infeasible format is charged the
    worst feasible time (the run would fail and fall back).
    """
    predictions = np.asarray(predictions, dtype=object)
    if predictions.shape[0] != len(times):
        raise ValueError("predictions and times must be aligned")
    if predictions.shape[0] == 0:
        raise ValueError("empty evaluation set")
    gt_ratios = np.empty(predictions.shape[0])
    csr_ratios = np.empty(predictions.shape[0])
    exceed = 0
    for i, (pred, t) in enumerate(zip(predictions, times)):
        oracle = min(t.values())
        chosen = t.get(str(pred), max(t.values()))
        gt_ratios[i] = oracle / chosen
        csr = t["csr"]
        csr_ratios[i] = csr / chosen
        if chosen / csr >= threshold:
            exceed += 1
    return SpeedupMetrics(
        gt_speedup=_geomean(gt_ratios),
        csr_speedup=_geomean(csr_ratios),
        threshold_count=exceed,
    )
